//! Complete-mixing rumor epidemics (paper §1.4, Tables 1–3).
//!
//! The Tables 1–3 experiments run a single update through `n = 1000` sites
//! with uniform partner selection and no network topology, measuring
//!
//! * **residue** `s` — the fraction of sites still susceptible when the
//!   epidemic quiesces,
//! * **traffic** `m` — database updates sent per site,
//! * **delay** `t_ave` / `t_last` — mean and maximum cycles from injection
//!   to receipt.
//!
//! Connection limits and hunting (§1.4's *Connection Limit* and *Hunting*
//! variations) come from the shared [`CycleEngine`]: under push, a site can
//! accept at most `C` inbound connections per cycle and rejected senders
//! may hunt for alternates; under pull, a source serves at most `C`
//! requests per cycle.
//!
//! Both drivers here are thin shims over the engine's rumor-mongering
//! and bit-anti-entropy protocols with [`UniformPartners`] selection.

use epidemic_core::rumor::RumorConfig;
use epidemic_core::{Direction, Replica};
use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bitset::BitSet;
use crate::engine::protocols::{BitAntiEntropyProtocol, MixingProtocol};
use crate::engine::{
    CycleEngine, Observer, ReceiveLog, ShardedCycleEngine, SirObserver, UniformPartners,
};

/// Result of one single-update epidemic run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpidemicResult {
    /// Number of sites.
    pub n: usize,
    /// Fraction of sites still susceptible at quiescence (`s`).
    pub residue: f64,
    /// Updates sent per site (`m`).
    pub traffic: f64,
    /// Mean cycles from injection to receipt, over sites that received the
    /// update (the origin counts with delay 0).
    pub t_ave: f64,
    /// Cycles until the last receiving site got the update.
    pub t_last: f64,
    /// Cycles until quiescence (no site infective).
    pub cycles: u32,
    /// Whether every site received the update.
    pub complete: bool,
}

/// Per-cycle susceptible/infective/removed fractions from a traced run
/// ([`RumorEpidemic::run_traced`]). Point 0 is the state immediately after
/// injection; point `c` is the state after cycle `c`.
#[derive(Debug, Clone, PartialEq)]
pub struct SirTrace {
    /// `(s, i, r)` fraction triples, one per recorded state.
    pub points: Vec<(f64, f64, f64)>,
    /// The run's summary result.
    pub result: EpidemicResult,
}

/// Driver for single-update rumor epidemics under complete mixing.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// use epidemic_sim::mixing::RumorEpidemic;
///
/// let cfg = RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k: 3 });
/// let r = RumorEpidemic::new(cfg).run(500, 7);
/// assert!(r.residue < 0.1); // k = 3 reaches almost everyone
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RumorEpidemic {
    cfg: RumorConfig,
    connection_limit: Option<u32>,
    hunt_limit: u32,
    max_cycles: u32,
    synchronous: bool,
}

/// The single key every epidemic run spreads.
const KEY: u32 = 0;

impl RumorEpidemic {
    /// Creates a driver for the given rumor-mongering configuration, with
    /// no connection limit and no hunting.
    pub fn new(cfg: RumorConfig) -> Self {
        RumorEpidemic {
            cfg,
            connection_limit: None,
            hunt_limit: 0,
            max_cycles: 100_000,
            synchronous: true,
        }
    }

    /// Chooses round semantics for push feedback. When `true` (the
    /// default, matching the paper's cycle model), a sender's feedback is
    /// judged against the recipient's state at the *start* of the cycle,
    /// so two infectives pushing to the same susceptible site in one cycle
    /// both receive useful feedback. When `false`, contacts within a cycle
    /// are fully sequential.
    pub fn synchronous(mut self, synchronous: bool) -> Self {
        self.synchronous = synchronous;
        self
    }

    /// Limits how many connections a site can accept per cycle (§1.4
    /// *Connection Limit*). `None` means unlimited.
    pub fn connection_limit(mut self, limit: Option<u32>) -> Self {
        self.connection_limit = limit;
        self
    }

    /// Number of alternate partners a rejected initiator may try (§1.4
    /// *Hunting*).
    pub fn hunt_limit(mut self, hunt: u32) -> Self {
        self.hunt_limit = hunt;
        self
    }

    /// Safety bound on simulated cycles.
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Runs one epidemic: a single update injected at site 0 of `n` sites,
    /// simulated to quiescence.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run(&self, n: usize, seed: u64) -> EpidemicResult {
        self.run_observed(n, seed, &mut ())
    }

    /// As [`RumorEpidemic::run`], additionally recording the susceptible /
    /// infective / removed fractions after every cycle — the simulated
    /// counterpart of the §1.4 differential-equation trajectory, captured
    /// by composing a [`SirObserver`] onto the engine run.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_traced(&self, n: usize, seed: u64) -> SirTrace {
        let mut observer = SirObserver::new();
        let result = self.run_observed(n, seed, &mut observer);
        SirTrace {
            points: observer.points,
            result,
        }
    }

    /// Runs `trials` epidemics in parallel with seeds `seed_base + trial`,
    /// returning results in trial order — identical to a sequential loop
    /// over [`RumorEpidemic::run`] at any thread count.
    pub fn run_trials(
        &self,
        runner: crate::runner::TrialRunner,
        n: usize,
        trials: u64,
        seed_base: u64,
    ) -> Vec<EpidemicResult> {
        runner.run(trials, seed_base, |seed| self.run(n, seed))
    }

    /// As [`RumorEpidemic::run`], reporting every contact and cycle
    /// boundary to `observer` — any composition of
    /// [`Observer<MixingProtocol>`] implementations, e.g. a
    /// [`TraceObserver`](crate::engine::trace::TraceObserver) paired with
    /// an [`InvariantObserver`](crate::engine::trace::InvariantObserver).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_observed<O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        seed: u64,
        observer: &mut O,
    ) -> EpidemicResult {
        self.run_metered(n, seed, observer, &mut ())
    }

    /// As [`RumorEpidemic::run_observed`], additionally reporting engine
    /// counters and phase timings to `sink` (see
    /// [`CycleEngine::run_instrumented`]). With the no-op sink `()` this
    /// is exactly [`RumorEpidemic::run_observed`] — the instrumentation
    /// compiles away — which is what the `metrics_sink` microbenchmark
    /// pins down.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_metered<O, S>(
        &self,
        n: usize,
        seed: u64,
        observer: &mut O,
        sink: &mut S,
    ) -> EpidemicResult
    where
        O: Observer<MixingProtocol>,
        S: epidemic_trace::MetricsSink,
    {
        let policy = UniformPartners::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(0, 0);

        let mut protocol = MixingProtocol {
            cfg: self.cfg,
            synchronous: self.synchronous,
            sites,
            received,
            state0: BitSet::new(n),
            hot0: BitSet::new(n),
            scratch: epidemic_core::RumorScratch::new(),
        };
        let report = CycleEngine::new()
            .connection_limit(self.connection_limit)
            .hunt_limit(self.hunt_limit)
            .max_cycles(self.max_cycles)
            .run_instrumented(&mut protocol, &policy, &mut rng, observer, sink);

        let received = protocol.received;
        EpidemicResult {
            n,
            residue: received.residue(),
            traffic: report.totals.sent as f64 / n as f64,
            t_ave: received.t_ave_received(),
            t_last: f64::from(received.t_last().unwrap_or(0)),
            cycles: report.cycles,
            complete: received.complete(),
        }
    }

    /// As [`RumorEpidemic::run`] on the deterministic shard-parallel
    /// engine: the output is a pure function of `(n, seed, shards)` and
    /// never of `workers` — but it is a *different* RNG universe from
    /// [`RumorEpidemic::run`] (see [`engine::sharded`](crate::engine::sharded)).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, or if a connection limit or hunting is
    /// configured: both serialize on global accept counters and are only
    /// supported by the sequential engine.
    pub fn run_sharded(
        &self,
        n: usize,
        seed: u64,
        shards: usize,
        workers: usize,
    ) -> EpidemicResult {
        self.run_sharded_observed(n, seed, shards, workers, &mut ())
    }

    /// As [`RumorEpidemic::run_sharded`] with an observer; events arrive
    /// in the engine's deterministic merge order.
    pub fn run_sharded_observed<O: Observer<MixingProtocol>>(
        &self,
        n: usize,
        seed: u64,
        shards: usize,
        workers: usize,
        observer: &mut O,
    ) -> EpidemicResult {
        assert!(
            self.connection_limit.is_none() && self.hunt_limit == 0,
            "sharded mode does not support connection limits or hunting"
        );
        let policy = UniformPartners::new(n);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        sites[0].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(0, 0);

        let mut protocol = MixingProtocol {
            cfg: self.cfg,
            synchronous: self.synchronous,
            sites,
            received,
            state0: BitSet::new(n),
            hot0: BitSet::new(n),
            scratch: epidemic_core::RumorScratch::new(),
        };
        let report = ShardedCycleEngine::new(shards)
            .workers(workers)
            .max_cycles(self.max_cycles)
            .run(&mut protocol, &policy, seed, observer);

        let received = protocol.received;
        EpidemicResult {
            n,
            residue: received.residue(),
            traffic: report.totals.sent as f64 / n as f64,
            t_ave: received.t_ave_received(),
            t_last: f64::from(received.t_last().unwrap_or(0)),
            cycles: report.cycles,
            complete: received.complete(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_core::{Feedback, Removal};

    fn cfg(direction: Direction, k: u32) -> RumorConfig {
        RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k })
    }

    #[test]
    fn push_epidemic_reaches_most_sites() {
        let r = RumorEpidemic::new(cfg(Direction::Push, 3)).run(300, 1);
        assert!(r.residue < 0.1, "residue {}", r.residue);
        assert!(r.traffic > 1.0 && r.traffic < 10.0);
        assert!(r.t_last >= r.t_ave);
        assert!(f64::from(r.cycles) >= r.t_last);
    }

    #[test]
    fn higher_k_means_lower_residue_and_more_traffic() {
        let avg = |k: u32| {
            let mut residue = 0.0;
            let mut traffic = 0.0;
            for seed in 0..10 {
                let r = RumorEpidemic::new(cfg(Direction::Push, k)).run(400, seed);
                residue += r.residue;
                traffic += r.traffic;
            }
            (residue / 10.0, traffic / 10.0)
        };
        let (res1, traf1) = avg(1);
        let (res4, traf4) = avg(4);
        assert!(res4 < res1);
        assert!(traf4 > traf1);
    }

    #[test]
    fn pull_beats_push_on_residue() {
        let mut push_res = 0.0;
        let mut pull_res = 0.0;
        for seed in 0..10 {
            push_res += RumorEpidemic::new(cfg(Direction::Push, 2))
                .run(400, seed)
                .residue;
            pull_res += RumorEpidemic::new(cfg(Direction::Pull, 2))
                .run(400, seed)
                .residue;
        }
        assert!(
            pull_res < push_res,
            "pull {pull_res} should beat push {push_res}"
        );
    }

    #[test]
    fn push_pull_converges() {
        let r = RumorEpidemic::new(cfg(Direction::PushPull, 4)).run(300, 3);
        assert!(r.residue < 0.02, "residue {}", r.residue);
    }

    #[test]
    fn blind_coin_k1_dies_early() {
        let cfg = RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 1 });
        let mut residues = 0.0;
        for seed in 0..20 {
            residues += RumorEpidemic::new(cfg).run(300, seed).residue;
        }
        // Table 2, k=1: residue ≈ 0.96.
        assert!(residues / 20.0 > 0.75, "mean residue {}", residues / 20.0);
    }

    #[test]
    fn connection_limit_improves_push_residue() {
        // §1.4: "paradoxically, push gets significantly better" under a
        // connection limit of 1 — rejected contacts cost no traffic but the
        // update still spreads, improving the residue/traffic trade-off.
        let protocol = cfg(Direction::Push, 1);
        let mut unlimited = 0.0;
        let mut limited = 0.0;
        for seed in 0..30 {
            unlimited += RumorEpidemic::new(protocol).run(400, seed).residue;
            limited += RumorEpidemic::new(protocol)
                .connection_limit(Some(1))
                .run(400, seed)
                .residue;
        }
        assert!(
            limited < unlimited,
            "limited {limited} vs unlimited {unlimited}"
        );
    }

    #[test]
    fn connection_limit_hurts_pull_residue() {
        let protocol = cfg(Direction::Pull, 1);
        let mut unlimited = 0.0;
        let mut limited = 0.0;
        for seed in 0..20 {
            unlimited += RumorEpidemic::new(protocol).run(300, seed).residue;
            limited += RumorEpidemic::new(protocol)
                .connection_limit(Some(1))
                .run(300, seed)
                .residue;
        }
        assert!(
            limited >= unlimited,
            "limited {limited} vs unlimited {unlimited}"
        );
    }

    #[test]
    fn hunting_recovers_lost_connections() {
        let protocol = cfg(Direction::Push, 4);
        let mut no_hunt_residue = 0.0;
        let mut hunt_residue = 0.0;
        for seed in 0..10 {
            no_hunt_residue += RumorEpidemic::new(protocol)
                .connection_limit(Some(1))
                .run(300, seed)
                .residue;
            hunt_residue += RumorEpidemic::new(protocol)
                .connection_limit(Some(1))
                .hunt_limit(8)
                .run(300, seed)
                .residue;
        }
        assert!(hunt_residue <= no_hunt_residue + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RumorEpidemic::new(cfg(Direction::Push, 2)).run(200, 99);
        let b = RumorEpidemic::new(cfg(Direction::Push, 2)).run(200, 99);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn rejects_single_site() {
        RumorEpidemic::new(cfg(Direction::Push, 1)).run(1, 0);
    }
}

/// Complete-mixing **anti-entropy** epidemic (paper §1.3): every site
/// contacts one uniformly random partner per cycle and resolves
/// differences in the configured direction. Used to verify the §1.3
/// convergence results: `log₂n + ln n` expected time for push from a
/// single source, and the pull-vs-push tail recurrences.
///
/// # Example
///
/// ```
/// use epidemic_core::Direction;
/// use epidemic_sim::mixing::AntiEntropyEpidemic;
///
/// let run = AntiEntropyEpidemic::new(Direction::Push).run(256, 1);
/// assert!(run.complete);
/// // Expected cover time is log2(256) + ln(256) ≈ 13.5 cycles.
/// assert!(run.cycles > 4 && run.cycles < 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AntiEntropyEpidemic {
    direction: Direction,
    max_cycles: u32,
}

/// Result of one anti-entropy epidemic run.
#[derive(Debug, Clone, PartialEq)]
pub struct AntiEntropyRun {
    /// Cycles until every site held the update.
    pub cycles: u32,
    /// Susceptible fraction after each cycle (index 0 = after cycle 1).
    pub susceptible_trace: Vec<f64>,
    /// Whether full coverage was reached within the cycle bound.
    pub complete: bool,
}

impl AntiEntropyEpidemic {
    /// Creates a driver resolving differences in `direction`.
    pub fn new(direction: Direction) -> Self {
        AntiEntropyEpidemic {
            direction,
            max_cycles: 10_000,
        }
    }

    /// Safety bound on simulated cycles.
    pub fn max_cycles(mut self, max: u32) -> Self {
        self.max_cycles = max;
        self
    }

    /// Runs one epidemic: site 0 of `n` holds the update; each cycle every
    /// site contacts a uniform random partner and resolves differences.
    /// The update state is a single bit per site, matching the §1.3 model
    /// where contacts against start-of-cycle state would only slow both
    /// variants equally.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run(&self, n: usize, seed: u64) -> AntiEntropyRun {
        self.run_observed(n, seed, &mut ())
    }

    /// As [`AntiEntropyEpidemic::run`], reporting every contact and cycle
    /// boundary to `observer`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_observed<O: Observer<BitAntiEntropyProtocol>>(
        &self,
        n: usize,
        seed: u64,
        observer: &mut O,
    ) -> AntiEntropyRun {
        let policy = UniformPartners::new(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut infected = vec![false; n];
        infected[0] = true;
        let mut protocol = BitAntiEntropyProtocol {
            direction: self.direction,
            infected,
            snapshot: BitSet::new(n),
            count: 1,
            trace: Vec::new(),
        };
        let report = CycleEngine::new().max_cycles(self.max_cycles).run(
            &mut protocol,
            &policy,
            &mut rng,
            observer,
        );
        AntiEntropyRun {
            cycles: report.cycles,
            susceptible_trace: protocol.trace,
            complete: protocol.count == n,
        }
    }

    /// As [`AntiEntropyEpidemic::run`] on the deterministic shard-parallel
    /// engine: the output is a pure function of `(n, seed, shards)` and
    /// never of `workers` — but it is a *different* RNG universe from
    /// [`AntiEntropyEpidemic::run`] (see
    /// [`engine::sharded`](crate::engine::sharded)).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn run_sharded(
        &self,
        n: usize,
        seed: u64,
        shards: usize,
        workers: usize,
    ) -> AntiEntropyRun {
        self.run_sharded_observed(n, seed, shards, workers, &mut ())
    }

    /// As [`AntiEntropyEpidemic::run_sharded`] with an observer; events
    /// arrive in the engine's deterministic merge order.
    pub fn run_sharded_observed<O: Observer<BitAntiEntropyProtocol>>(
        &self,
        n: usize,
        seed: u64,
        shards: usize,
        workers: usize,
        observer: &mut O,
    ) -> AntiEntropyRun {
        let policy = UniformPartners::new(n);
        let mut infected = vec![false; n];
        infected[0] = true;
        let mut protocol = BitAntiEntropyProtocol {
            direction: self.direction,
            infected,
            snapshot: BitSet::new(n),
            count: 1,
            trace: Vec::new(),
        };
        let report = ShardedCycleEngine::new(shards)
            .workers(workers)
            .max_cycles(self.max_cycles)
            .run(&mut protocol, &policy, seed, observer);
        AntiEntropyRun {
            cycles: report.cycles,
            susceptible_trace: protocol.trace,
            complete: protocol.count == n,
        }
    }

    /// Runs `trials` epidemics in parallel with seeds `seed_base + trial`,
    /// returning results in trial order — identical to a sequential loop
    /// over [`AntiEntropyEpidemic::run`] at any thread count.
    pub fn run_trials(
        &self,
        runner: crate::runner::TrialRunner,
        n: usize,
        trials: u64,
        seed_base: u64,
    ) -> Vec<AntiEntropyRun> {
        runner.run(trials, seed_base, |seed| self.run(n, seed))
    }
}

#[cfg(test)]
mod ae_tests {
    use super::*;

    #[test]
    fn push_cover_time_tracks_log2_plus_ln() {
        let driver = AntiEntropyEpidemic::new(Direction::Push);
        let n = 1024;
        let mean: f64 = (0..20)
            .map(|s| f64::from(driver.run(n, s).cycles))
            .sum::<f64>()
            / 20.0;
        let expected = (n as f64).log2() + (n as f64).ln();
        assert!(
            (mean - expected).abs() < expected * 0.25,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn pull_converges_faster_than_push_in_the_tail() {
        // Compare cycles spent below 10% susceptible.
        let tail = |direction| {
            let driver = AntiEntropyEpidemic::new(direction);
            (0..10)
                .map(|s| {
                    let run = driver.run(2048, s);
                    run.susceptible_trace
                        .iter()
                        .filter(|&&p| p > 0.0 && p < 0.1)
                        .count() as f64
                })
                .sum::<f64>()
                / 10.0
        };
        let push = tail(Direction::Push);
        let pull = tail(Direction::Pull);
        assert!(pull < push, "pull tail {pull} vs push tail {push}");
    }

    #[test]
    fn push_pull_behaves_like_pull() {
        let driver_pp = AntiEntropyEpidemic::new(Direction::PushPull);
        let driver_push = AntiEntropyEpidemic::new(Direction::Push);
        let mean = |d: AntiEntropyEpidemic| {
            (0..10)
                .map(|s| f64::from(d.run(1024, s).cycles))
                .sum::<f64>()
                / 10.0
        };
        assert!(mean(driver_pp) < mean(driver_push));
    }

    #[test]
    fn all_directions_always_complete() {
        for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
            let run = AntiEntropyEpidemic::new(direction).run(128, 7);
            assert!(run.complete);
            assert_eq!(*run.susceptible_trace.last().unwrap(), 0.0);
        }
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use epidemic_core::{Feedback, Removal};

    #[test]
    fn sir_fractions_always_sum_to_one() {
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let trace = RumorEpidemic::new(cfg).run_traced(300, 5);
        assert!(!trace.points.is_empty());
        for &(s, i, r) in &trace.points {
            assert!((s + i + r - 1.0).abs() < 1e-12);
            assert!(s >= 0.0 && i >= 0.0 && r >= 0.0);
        }
    }

    #[test]
    fn trace_starts_with_one_infective_and_ends_quiescent() {
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 3 },
        );
        let trace = RumorEpidemic::new(cfg).run_traced(200, 9);
        let first = trace.points[0];
        assert!((first.0 - 199.0 / 200.0).abs() < 1e-12);
        assert!((first.1 - 1.0 / 200.0).abs() < 1e-12);
        let last = trace.points.last().unwrap();
        assert_eq!(last.1, 0.0, "quiescent: nobody infective");
        assert!((last.0 - trace.result.residue).abs() < 1e-12);
    }

    #[test]
    fn susceptible_fraction_is_monotone_nonincreasing() {
        let cfg = RumorConfig::new(
            Direction::PushPull,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let trace = RumorEpidemic::new(cfg).run_traced(300, 11);
        for w in trace.points.windows(2) {
            assert!(w[1].0 <= w[0].0 + 1e-12);
        }
    }

    #[test]
    fn traced_result_matches_untraced_run() {
        let cfg = RumorConfig::new(
            Direction::Pull,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        );
        let driver = RumorEpidemic::new(cfg);
        let plain = driver.run(250, 3);
        let traced = driver.run_traced(250, 3);
        assert_eq!(plain, traced.result);
    }
}
