//! Steady-state rumor mongering under continuous update injection —
//! §1.4's push-vs-pull trade-off.
//!
//! "If there are numerous independent updates a *pull* request is likely
//! to find a source with a non-empty rumor list, triggering useful
//! information flow. By contrast, if the database is quiescent, the *push*
//! algorithm ceases to introduce traffic overhead, while the *pull*
//! variation continues to inject fruitless requests for updates. Our own
//! CIN application has a high enough update rate to warrant the use of
//! pull."
//!
//! This driver injects updates at a configurable rate and measures, per
//! variant: updates delivered, update messages sent, *fruitless contacts*
//! (conversations that moved nothing — pull's idle polling, push's
//! redundant sends), and the residue of rumors that quiesced before
//! reaching everyone.

use epidemic_core::rumor::{self, RumorConfig, RumorScratch};
use epidemic_core::{Direction, Replica};
use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::{
    ContactStats, CycleEngine, EpidemicProtocol, Roster, UniformPartners, UpdateInjector,
};
use crate::util::pair_mut;

/// Configuration for the steady-state rumor experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadyConfig {
    /// Number of sites.
    pub sites: usize,
    /// New updates injected per cycle at uniformly random sites.
    pub updates_per_cycle: f64,
    /// Cycles of injection.
    pub inject_cycles: u32,
    /// Additional drain cycles after injection stops (so every rumor can
    /// run to quiescence before measurement ends).
    pub drain_cycles: u32,
}

impl Default for RumorSteadyConfig {
    fn default() -> Self {
        RumorSteadyConfig {
            sites: 200,
            updates_per_cycle: 1.0,
            inject_cycles: 100,
            drain_cycles: 200,
        }
    }
}

/// Measurements from one steady-state rumor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadyReport {
    /// Updates injected over the run.
    pub injected: u32,
    /// Mean fraction of sites each update reached by the end.
    pub coverage: f64,
    /// Update messages sent per delivered copy (traffic efficiency).
    pub messages_per_delivery: f64,
    /// Conversations that transferred nothing, per cycle — pull's idle
    /// polling cost, push's redundant contacts.
    pub fruitless_per_cycle: f64,
    /// Conversations attempted per cycle (the fixed protocol overhead).
    pub contacts_per_cycle: f64,
}

/// Driver for steady-state rumor mongering under complete mixing.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// use epidemic_sim::rumor_steady::{RumorSteadyConfig, RumorSteadySim};
///
/// let cfg = RumorConfig::new(Direction::Pull, Feedback::Feedback,
///                            Removal::Counter { k: 2 });
/// let sim = RumorSteadySim::new(cfg, RumorSteadyConfig::default());
/// let report = sim.run(7);
/// assert!(report.coverage > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadySim {
    cfg: RumorConfig,
    config: RumorSteadyConfig,
}

impl RumorSteadySim {
    /// Creates the driver.
    pub fn new(cfg: RumorConfig, config: RumorSteadyConfig) -> Self {
        RumorSteadySim { cfg, config }
    }

    /// Runs the workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two sites.
    pub fn run(&self, seed: u64) -> RumorSteadyReport {
        let n = self.config.sites;
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = UniformPartners::new(n);
        let sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let total_cycles = self.config.inject_cycles + self.config.drain_cycles;
        let mut protocol = RumorSteadyProtocol {
            cfg: self.cfg,
            sites,
            inject_cycles: self.config.inject_cycles,
            injector: UpdateInjector::new(self.config.updates_per_cycle),
            scratch: RumorScratch::new(),
        };
        let report = CycleEngine::new().max_cycles(total_cycles).run(
            &mut protocol,
            &policy,
            &mut rng,
            &mut (),
        );

        // Coverage: each injected key should be at (nearly) all n sites.
        let injected = protocol.injector.injected();
        let held: u64 = protocol.sites.iter().map(|s| s.db().len() as u64).sum();
        let coverage = if injected == 0 {
            1.0
        } else {
            held as f64 / (u64::from(injected) * n as u64) as f64
        };
        let totals = report.totals;
        RumorSteadyReport {
            injected,
            coverage,
            messages_per_delivery: if totals.useful == 0 {
                0.0
            } else {
                totals.sent as f64 / totals.useful as f64
            },
            fruitless_per_cycle: totals.fruitless as f64 / f64::from(total_cycles),
            contacts_per_cycle: totals.contacts as f64 / f64::from(total_cycles),
        }
    }
}

/// Continuous-injection rumor mongering: push rosters only the infective
/// sites (a quiescent network costs nothing), pull and push-pull poll from
/// every site every cycle. The engine's contact totals *are* the
/// measurement — fruitless contacts, messages sent, useful deliveries.
struct RumorSteadyProtocol {
    cfg: RumorConfig,
    sites: Vec<Replica<u32, u32>>,
    inject_cycles: u32,
    injector: UpdateInjector,
    scratch: RumorScratch<u32>,
}

impl EpidemicProtocol for RumorSteadyProtocol {
    fn site_count(&self) -> usize {
        self.sites.len()
    }

    fn roster(&self) -> Roster {
        match self.cfg.direction {
            Direction::Push => Roster::Active,
            Direction::Pull | Direction::PushPull => Roster::Everyone,
        }
    }

    fn is_active(&self, i: usize) -> bool {
        !self.sites[i].hot().is_empty()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        // The run length is fixed: the engine's cycle bound is the
        // inject + drain budget, so the protocol itself never finishes.
        false
    }

    fn begin_cycle(&mut self, cycle: u32, rng: &mut StdRng) {
        let time = u64::from(cycle) * 10;
        for r in self.sites.iter_mut() {
            r.advance_clock(time);
        }
        if cycle <= self.inject_cycles {
            let sites = &mut self.sites;
            self.injector.inject(sites.len(), rng, |site, key| {
                sites[site].client_update(key, cycle);
            });
        }
    }

    fn contact(&mut self, _cycle: u32, i: usize, j: usize, rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.sites, i, j);
        rumor::contact_with(&self.cfg, a, b, rng, &mut self.scratch).into()
    }

    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        if self.cfg.direction == Direction::Pull {
            for site in self.sites.iter_mut() {
                rumor::end_cycle(&self.cfg, site);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_core::{Feedback, Removal};

    fn cfg(direction: Direction, k: u32) -> RumorConfig {
        RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k })
    }

    #[test]
    fn quiescent_push_costs_nothing_but_pull_keeps_polling() {
        let config = RumorSteadyConfig {
            updates_per_cycle: 0.0,
            inject_cycles: 0,
            drain_cycles: 50,
            ..RumorSteadyConfig::default()
        };
        let push = RumorSteadySim::new(cfg(Direction::Push, 2), config).run(1);
        let pull = RumorSteadySim::new(cfg(Direction::Pull, 2), config).run(1);
        assert_eq!(push.contacts_per_cycle, 0.0, "§1.4: push goes silent");
        assert!(
            pull.fruitless_per_cycle > 100.0,
            "§1.4: pull keeps injecting fruitless requests: {}",
            pull.fruitless_per_cycle
        );
    }

    #[test]
    fn busy_network_makes_pull_efficient() {
        let config = RumorSteadyConfig {
            updates_per_cycle: 4.0,
            ..RumorSteadyConfig::default()
        };
        let pull = RumorSteadySim::new(cfg(Direction::Pull, 2), config).run(2);
        assert!(pull.coverage > 0.95, "coverage {}", pull.coverage);
        // At 4 updates/cycle most polls find a non-empty rumor list.
        assert!(
            pull.fruitless_per_cycle < 0.7 * pull.contacts_per_cycle,
            "fruitless {} of {}",
            pull.fruitless_per_cycle,
            pull.contacts_per_cycle
        );
    }

    #[test]
    fn push_and_pull_both_deliver_under_load() {
        let config = RumorSteadyConfig::default();
        for direction in [Direction::Push, Direction::Pull] {
            let r = RumorSteadySim::new(cfg(direction, 3), config).run(3);
            assert!(r.coverage > 0.9, "{direction:?} coverage {}", r.coverage);
            assert!(r.messages_per_delivery >= 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = RumorSteadySim::new(cfg(Direction::Pull, 2), RumorSteadyConfig::default());
        assert_eq!(sim.run(11), sim.run(11));
    }
}
