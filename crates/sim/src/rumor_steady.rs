//! Steady-state rumor mongering under continuous update injection —
//! §1.4's push-vs-pull trade-off.
//!
//! "If there are numerous independent updates a *pull* request is likely
//! to find a source with a non-empty rumor list, triggering useful
//! information flow. By contrast, if the database is quiescent, the *push*
//! algorithm ceases to introduce traffic overhead, while the *pull*
//! variation continues to inject fruitless requests for updates. Our own
//! CIN application has a high enough update rate to warrant the use of
//! pull."
//!
//! This driver injects updates at a configurable rate and measures, per
//! variant: updates delivered, update messages sent, *fruitless contacts*
//! (conversations that moved nothing — pull's idle polling, push's
//! redundant sends), and the residue of rumors that quiesced before
//! reaching everyone.

use epidemic_core::rumor::{self, RumorConfig};
use epidemic_core::{Direction, Replica};
use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::util::pair_mut;

/// Configuration for the steady-state rumor experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadyConfig {
    /// Number of sites.
    pub sites: usize,
    /// New updates injected per cycle at uniformly random sites.
    pub updates_per_cycle: f64,
    /// Cycles of injection.
    pub inject_cycles: u32,
    /// Additional drain cycles after injection stops (so every rumor can
    /// run to quiescence before measurement ends).
    pub drain_cycles: u32,
}

impl Default for RumorSteadyConfig {
    fn default() -> Self {
        RumorSteadyConfig {
            sites: 200,
            updates_per_cycle: 1.0,
            inject_cycles: 100,
            drain_cycles: 200,
        }
    }
}

/// Measurements from one steady-state rumor run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadyReport {
    /// Updates injected over the run.
    pub injected: u32,
    /// Mean fraction of sites each update reached by the end.
    pub coverage: f64,
    /// Update messages sent per delivered copy (traffic efficiency).
    pub messages_per_delivery: f64,
    /// Conversations that transferred nothing, per cycle — pull's idle
    /// polling cost, push's redundant contacts.
    pub fruitless_per_cycle: f64,
    /// Conversations attempted per cycle (the fixed protocol overhead).
    pub contacts_per_cycle: f64,
}

/// Driver for steady-state rumor mongering under complete mixing.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// use epidemic_sim::rumor_steady::{RumorSteadyConfig, RumorSteadySim};
///
/// let cfg = RumorConfig::new(Direction::Pull, Feedback::Feedback,
///                            Removal::Counter { k: 2 });
/// let sim = RumorSteadySim::new(cfg, RumorSteadyConfig::default());
/// let report = sim.run(7);
/// assert!(report.coverage > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RumorSteadySim {
    cfg: RumorConfig,
    config: RumorSteadyConfig,
}

impl RumorSteadySim {
    /// Creates the driver.
    pub fn new(cfg: RumorConfig, config: RumorSteadyConfig) -> Self {
        RumorSteadySim { cfg, config }
    }

    /// Runs the workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has fewer than two sites.
    pub fn run(&self, seed: u64) -> RumorSteadyReport {
        let n = self.config.sites;
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sites: Vec<Replica<u32, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let mut injected = 0u32;
        let mut next_key = 0u32;
        let mut carry = 0.0;
        let mut sent = 0u64;
        let mut useful = 0u64;
        let mut fruitless = 0u64;
        let mut contacts = 0u64;
        let mut order: Vec<usize> = (0..n).collect();

        let total_cycles = self.config.inject_cycles + self.config.drain_cycles;
        for cycle in 1..=total_cycles {
            let time = u64::from(cycle) * 10;
            for r in sites.iter_mut() {
                r.advance_clock(time);
            }
            if cycle <= self.config.inject_cycles {
                carry += self.config.updates_per_cycle;
                while carry >= 1.0 {
                    carry -= 1.0;
                    let site = rng.random_range(0..n);
                    sites[site].client_update(next_key, cycle);
                    next_key += 1;
                    injected += 1;
                }
            }
            match self.cfg.direction {
                Direction::Push => {
                    // Only infective sites act; a quiescent network costs
                    // nothing.
                    let mut initiators: Vec<usize> =
                        (0..n).filter(|&i| !sites[i].hot().is_empty()).collect();
                    initiators.shuffle(&mut rng);
                    for i in initiators {
                        let mut j = rng.random_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        let (a, b) = pair_mut(&mut sites, i, j);
                        let stats = rumor::push_contact(&self.cfg, a, b, &mut rng);
                        contacts += 1;
                        sent += u64::try_from(stats.sent).expect("sent count fits u64");
                        useful += stats.useful as u64;
                        if stats.useful == 0 {
                            fruitless += 1;
                        }
                    }
                }
                Direction::Pull | Direction::PushPull => {
                    // Every site polls every cycle, quiescent or not.
                    order.shuffle(&mut rng);
                    for &i in &order {
                        let mut j = rng.random_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        let (a, b) = pair_mut(&mut sites, i, j);
                        let stats = if self.cfg.direction == Direction::Pull {
                            rumor::pull_contact(&self.cfg, a, b, &mut rng)
                        } else {
                            rumor::push_pull_contact(&self.cfg, a, b, &mut rng)
                        };
                        contacts += 1;
                        sent += u64::try_from(stats.sent).expect("sent count fits u64");
                        useful += stats.useful as u64;
                        if stats.useful == 0 {
                            fruitless += 1;
                        }
                    }
                    if self.cfg.direction == Direction::Pull {
                        for site in sites.iter_mut() {
                            rumor::end_cycle(&self.cfg, site);
                        }
                    }
                }
            }
        }

        // Coverage: each injected key should be at (nearly) all n sites.
        let held: u64 = sites.iter().map(|s| s.db().len() as u64).sum();
        let coverage = if injected == 0 {
            1.0
        } else {
            held as f64 / (u64::from(injected) * n as u64) as f64
        };
        RumorSteadyReport {
            injected,
            coverage,
            messages_per_delivery: if useful == 0 {
                0.0
            } else {
                sent as f64 / useful as f64
            },
            fruitless_per_cycle: fruitless as f64 / f64::from(total_cycles),
            contacts_per_cycle: contacts as f64 / f64::from(total_cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_core::{Feedback, Removal};

    fn cfg(direction: Direction, k: u32) -> RumorConfig {
        RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k })
    }

    #[test]
    fn quiescent_push_costs_nothing_but_pull_keeps_polling() {
        let config = RumorSteadyConfig {
            updates_per_cycle: 0.0,
            inject_cycles: 0,
            drain_cycles: 50,
            ..RumorSteadyConfig::default()
        };
        let push = RumorSteadySim::new(cfg(Direction::Push, 2), config).run(1);
        let pull = RumorSteadySim::new(cfg(Direction::Pull, 2), config).run(1);
        assert_eq!(push.contacts_per_cycle, 0.0, "§1.4: push goes silent");
        assert!(
            pull.fruitless_per_cycle > 100.0,
            "§1.4: pull keeps injecting fruitless requests: {}",
            pull.fruitless_per_cycle
        );
    }

    #[test]
    fn busy_network_makes_pull_efficient() {
        let config = RumorSteadyConfig {
            updates_per_cycle: 4.0,
            ..RumorSteadyConfig::default()
        };
        let pull = RumorSteadySim::new(cfg(Direction::Pull, 2), config).run(2);
        assert!(pull.coverage > 0.95, "coverage {}", pull.coverage);
        // At 4 updates/cycle most polls find a non-empty rumor list.
        assert!(
            pull.fruitless_per_cycle < 0.7 * pull.contacts_per_cycle,
            "fruitless {} of {}",
            pull.fruitless_per_cycle,
            pull.contacts_per_cycle
        );
    }

    #[test]
    fn push_and_pull_both_deliver_under_load() {
        let config = RumorSteadyConfig::default();
        for direction in [Direction::Push, Direction::Pull] {
            let r = RumorSteadySim::new(cfg(direction, 3), config).run(3);
            assert!(r.coverage > 0.9, "{direction:?} coverage {}", r.coverage);
            assert!(r.messages_per_delivery >= 1.0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let sim = RumorSteadySim::new(cfg(Direction::Pull, 2), RumorSteadyConfig::default());
        assert_eq!(sim.run(11), sim.run(11));
    }
}
