//! Deterministic parallel trial execution.
//!
//! Every table and figure in the reproduction is a Monte-Carlo aggregate:
//! `trials` independent simulations whose per-trial seeds are derived as
//! `seed_base.wrapping_add(trial)` — exactly the seeds a sequential
//! `for trial in 0..trials` loop would use. [`TrialRunner`] fans those
//! trials out across threads (`std::thread::scope`, no dependencies) and
//! hands results back **in trial order**, so any aggregation over them is
//! bit-identical regardless of thread count.
//!
//! Thread count resolution, highest priority first:
//!
//! 1. [`TrialRunner::threads`] builder override;
//! 2. the `EPIDEMIC_THREADS` environment variable (useful to force
//!    sequential runs: `EPIDEMIC_THREADS=1 cargo run ...`);
//! 3. [`std::thread::available_parallelism`];
//!
//! always capped by the trial count.

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV_VAR: &str = "EPIDEMIC_THREADS";

/// Deterministic trial-fan-out executor. See the [module docs](self).
///
/// # Example
///
/// ```
/// use epidemic_sim::runner::TrialRunner;
///
/// let runner = TrialRunner::new();
/// // Results arrive in trial order: seeds are 100, 101, ..., 107.
/// let seeds = runner.run(8, 100, |seed| seed);
/// assert_eq!(seeds, (100..108).collect::<Vec<u64>>());
/// // Identical to a forced single-thread run.
/// assert_eq!(seeds, TrialRunner::new().threads(1).run(8, 100, |seed| seed));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct TrialRunner {
    threads: Option<NonZeroUsize>,
}

impl TrialRunner {
    /// A runner using the environment/hardware thread count.
    pub fn new() -> Self {
        TrialRunner { threads: None }
    }

    /// Forces an exact worker count (e.g. `1` for sequential execution),
    /// taking precedence over `EPIDEMIC_THREADS` and the hardware count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(NonZeroUsize::new(threads).expect("thread count must be nonzero"));
        self
    }

    /// The worker count this runner would use for `trials` trials.
    pub fn effective_threads(&self, trials: u64) -> usize {
        let configured = self
            .threads
            .map(NonZeroUsize::get)
            .unwrap_or_else(default_threads);
        configured.min(usize::try_from(trials).unwrap_or(usize::MAX).max(1))
    }

    /// Splits this runner's thread budget between trial-level fan-out and
    /// per-trial shard workers, so nesting the sharded engine under trial
    /// parallelism never oversubscribes: `trial_workers × shard_workers`
    /// stays within the budget. Trials get priority (they parallelize
    /// perfectly); leftover budget goes to intra-trial shard workers,
    /// capped at `max_shard_workers` (typically the shard count — more
    /// workers than pair-tasks would idle).
    ///
    /// Returns `(trial_workers, shard_workers)`, both at least 1. The
    /// split affects wall-clock only, never output: trial seeds are fixed
    /// per index and the sharded engine's output is worker-invariant.
    pub fn split_budget(&self, trials: u64, max_shard_workers: usize) -> (usize, usize) {
        let budget = self
            .threads
            .map(NonZeroUsize::get)
            .unwrap_or_else(default_threads);
        let trial_workers = self.effective_threads(trials);
        let shard_workers = (budget / trial_workers.max(1)).clamp(1, max_shard_workers.max(1));
        (trial_workers, shard_workers)
    }

    /// Runs `trials` trials with seeds `seed_base.wrapping_add(trial)` and
    /// returns their results **in trial order**.
    ///
    /// When the global [`profile`](epidemic_trace::profile) recorder is on,
    /// the whole fan-out (spawn + simulate + join) is clocked under the
    /// `runner.trials` phase.
    pub fn run<T: Send>(
        &self,
        trials: u64,
        seed_base: u64,
        run: impl Fn(u64) -> T + Sync,
    ) -> Vec<T> {
        epidemic_trace::profile::time("runner.trials", || self.run_inner(trials, seed_base, run))
    }

    fn run_inner<T: Send>(
        &self,
        trials: u64,
        seed_base: u64,
        run: impl Fn(u64) -> T + Sync,
    ) -> Vec<T> {
        let count = usize::try_from(trials).expect("trial count fits in memory");
        let workers = self.effective_threads(trials);
        if workers <= 1 {
            return (0..trials)
                .map(|t| run(seed_base.wrapping_add(t)))
                .collect();
        }
        let mut results: Vec<Option<T>> = Vec::with_capacity(count);
        results.resize_with(count, || None);
        let chunk = trials.div_ceil(workers as u64);
        std::thread::scope(|scope| {
            let run = &run;
            let mut rest: &mut [Option<T>] = &mut results;
            for w in 0..workers as u64 {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(trials);
                if lo >= hi {
                    break;
                }
                let (mine, tail) = rest.split_at_mut(usize::try_from(hi - lo).expect("chunk fits"));
                rest = tail;
                scope.spawn(move || {
                    for (offset, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(run(seed_base.wrapping_add(lo + offset as u64)));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every trial slot is filled by its worker"))
            .collect()
    }

    /// As [`TrialRunner::run`], but folds the per-trial results into an
    /// accumulator — sequentially, in trial order, so the aggregate is
    /// bit-identical at any thread count (floating-point addition is not
    /// associative; a fixed fold order sidesteps that entirely).
    /// When the global [`profile`](epidemic_trace::profile) recorder is on,
    /// the sequential fold is clocked under the `runner.aggregate` phase
    /// (the fan-out itself lands under `runner.trials`).
    pub fn fold<T: Send, A>(
        &self,
        trials: u64,
        seed_base: u64,
        run: impl Fn(u64) -> T + Sync,
        init: A,
        fold: impl FnMut(A, T) -> A,
    ) -> A {
        let results = self.run(trials, seed_base, run);
        epidemic_trace::profile::time("runner.aggregate", || results.into_iter().fold(init, fold))
    }
}

/// The thread count used when no builder override is set:
/// `EPIDEMIC_THREADS` if present and valid, else the hardware count.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV_VAR) {
        if let Some(n) = parse_thread_override(&value) {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

fn parse_thread_override(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_seed_base_plus_trial() {
        let runner = TrialRunner::new();
        let seeds = runner.run(50, 1_000, |seed| seed);
        let expected: Vec<u64> = (0..50).map(|t| 1_000 + t).collect();
        assert_eq!(seeds, expected);
    }

    #[test]
    fn seed_derivation_wraps() {
        let runner = TrialRunner::new().threads(2);
        let seeds = runner.run(3, u64::MAX, |seed| seed);
        assert_eq!(seeds, vec![u64::MAX, 0, 1]);
    }

    #[test]
    fn one_thread_matches_many_threads() {
        // A cheap but nontrivial "simulation": results depend only on the
        // seed, so the fan-out must reproduce the sequential stream.
        let simulate = |seed: u64| {
            let x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (x, (x >> 11) as f64 * 0.5f64.powi(53))
        };
        let sequential = TrialRunner::new().threads(1).run(97, 7, simulate);
        for workers in [2, 3, 8] {
            let parallel = TrialRunner::new().threads(workers).run(97, 7, simulate);
            assert_eq!(sequential, parallel, "{workers} workers");
        }
    }

    #[test]
    fn fold_accumulates_in_trial_order() {
        let order = TrialRunner::new().threads(4).fold(
            20,
            0,
            |seed| seed,
            Vec::new(),
            |mut v, s| {
                v.push(s);
                v
            },
        );
        assert_eq!(order, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn handles_zero_and_one_trials() {
        let runner = TrialRunner::new();
        assert_eq!(runner.run(0, 9, |seed| seed), Vec::<u64>::new());
        assert_eq!(runner.run(1, 9, |seed| seed), vec![9]);
        assert_eq!(runner.effective_threads(0), 1);
        assert_eq!(runner.effective_threads(1), 1);
    }

    #[test]
    fn builder_override_wins() {
        assert_eq!(TrialRunner::new().threads(3).effective_threads(100), 3);
        assert_eq!(TrialRunner::new().threads(200).effective_threads(5), 5);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override("many"), None);
        assert_eq!(parse_thread_override(""), None);
    }

    #[test]
    fn split_budget_never_oversubscribes() {
        // 8-thread budget, 2 trials: 2 trial workers × 4 shard workers.
        assert_eq!(TrialRunner::new().threads(8).split_budget(2, 8), (2, 4));
        // All budget consumed by trials: shards run sequentially.
        assert_eq!(TrialRunner::new().threads(8).split_budget(100, 8), (8, 1));
        // Single trial: the whole budget goes to shard workers, capped by
        // the useful maximum.
        assert_eq!(TrialRunner::new().threads(8).split_budget(1, 4), (1, 4));
        assert_eq!(TrialRunner::new().threads(1).split_budget(10, 8), (1, 1));
        for (threads, trials, cap) in [(8, 3, 8), (5, 2, 3), (16, 1, 8)] {
            let (t, s) = TrialRunner::new()
                .threads(threads)
                .split_budget(trials, cap);
            assert!(t * s <= threads, "{t}×{s} exceeds budget {threads}");
            assert!(t >= 1 && s >= 1);
        }
    }

    #[test]
    fn more_workers_than_trials_is_safe() {
        let results = TrialRunner::new().threads(64).run(5, 0, |seed| seed * 2);
        assert_eq!(results, vec![0, 2, 4, 6, 8]);
    }
}
