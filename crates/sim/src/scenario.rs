//! End-to-end workloads combining the protocols (paper §1.2, §1.5, §2).
//!
//! * [`ClearinghouseScenario`] — the production configuration the paper
//!   describes: direct mail for initial distribution (fallible), periodic
//!   anti-entropy as the backup, with a configurable redistribution policy.
//! * [`resurrection_without_certificates`] — §2's motivating failure: naive
//!   deletion is undone by the propagation mechanism.
//! * [`DormantDeathScenario`] — §2.1–2.2: a site that was down for longer
//!   than `τ₁` rejoins with an obsolete item; a dormant death certificate
//!   awakens and re-cancels it everywhere.

use epidemic_core::{
    AntiEntropy, BackupAntiEntropy, Comparison, DirectMail, Direction, MailConfig, MailSystem,
    Redistribution, Replica,
};
use epidemic_db::{GcPolicy, SiteId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::engine::protocols::random_pair;
use crate::engine::{PartnerPolicy, UniformPartners};
use crate::util::pair_mut;

/// Configuration for the Clearinghouse-style workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ClearinghouseScenario {
    /// Number of database sites.
    pub sites: usize,
    /// Failure model of the mail transport.
    pub mail: MailConfig,
    /// Client updates injected, one per cycle starting at cycle 1, each at
    /// a random site.
    pub updates: usize,
    /// Anti-entropy runs every this many cycles (0 disables it).
    pub anti_entropy_every: u32,
    /// What anti-entropy does with discovered updates (§1.5).
    pub redistribution: Redistribution,
    /// When `Some(k)`, sites run push rumor mongering every cycle with
    /// feedback counters at threshold `k` — the initial-distribution role
    /// rumors play in §1.5, and what makes [`Redistribution::Rumor`]
    /// actually spread rediscovered updates.
    pub rumor_k: Option<u32>,
    /// Safety bound on simulated cycles.
    pub max_cycles: u32,
}

impl Default for ClearinghouseScenario {
    fn default() -> Self {
        ClearinghouseScenario {
            sites: 50,
            mail: MailConfig {
                loss_probability: 0.05,
                queue_capacity: 1_000,
            },
            updates: 20,
            anti_entropy_every: 5,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 10_000,
        }
    }
}

/// Outcome of a Clearinghouse workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClearinghouseReport {
    /// First cycle at which every replica was identical (after all updates
    /// were injected); `None` if never within the bound.
    pub consistent_at: Option<u32>,
    /// Mail messages lost or dropped by overflow.
    pub mail_failures: usize,
    /// Mail messages delivered.
    pub mail_delivered: usize,
    /// Entries shipped by anti-entropy (the repairs).
    pub ae_repairs: usize,
}

impl ClearinghouseScenario {
    /// Runs the workload to consistency (or the cycle bound).
    pub fn run(&self, seed: u64) -> ClearinghouseReport {
        assert!(self.sites >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.sites;
        let policy = UniformPartners::new(n);
        let mut replicas: Vec<Replica<u32, u64>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let mut mail: MailSystem<u32, u64> = MailSystem::new(n, self.mail);
        let direct = DirectMail::new();
        let backup = BackupAntiEntropy::new(self.redistribution);
        let everyone: Vec<SiteId> = (0..n as u32).map(SiteId::new).collect();
        let mut ae_repairs = 0usize;
        let mut consistent_at = None;

        for cycle in 1..=self.max_cycles {
            for r in &mut replicas {
                r.advance_clock(u64::from(cycle));
            }
            // Client activity: one update per cycle while any remain.
            if (cycle as usize) <= self.updates {
                let at = rng.random_range(0..n);
                let key = cycle; // unique key per update
                replicas[at].client_update(key, u64::from(cycle));
                direct.broadcast(&replicas[at], &everyone, &key, &mut mail, &mut rng);
            }
            // Mail delivery.
            for replica in replicas.iter_mut() {
                direct.deliver(replica, &mut mail);
            }
            // Rumor mongering for whatever is hot (client updates start
            // hot; under Redistribution::Rumor, so do rediscoveries).
            if let Some(k) = self.rumor_k {
                use epidemic_core::rumor::{self, RumorConfig};
                use epidemic_core::{Direction, Feedback, Removal};
                let cfg =
                    RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k });
                let infective: Vec<usize> =
                    (0..n).filter(|&i| !replicas[i].hot().is_empty()).collect();
                for i in infective {
                    let j = policy.attempt(i, &mut rng);
                    let (a, b) = pair_mut(&mut replicas, i, j);
                    rumor::push_contact(&cfg, a, b, &mut rng);
                }
            }
            // Periodic anti-entropy backup.
            if self.anti_entropy_every > 0 && cycle % self.anti_entropy_every == 0 {
                let mut order: Vec<usize> = (0..n).collect();
                order.shuffle(&mut rng);
                for i in order {
                    let j = policy.attempt(i, &mut rng);
                    let (a, b) = pair_mut(&mut replicas, i, j);
                    let outcome = backup.exchange(a, b);
                    ae_repairs += outcome.stats.total_sent();
                    // Mail redistribution (§1.5's expensive option).
                    for (key, entry) in outcome.remail {
                        for &to in &everyone {
                            mail.post(to, key, entry.clone(), &mut rng);
                        }
                    }
                }
            }
            // Consistency check once all updates are in flight.
            if (cycle as usize) >= self.updates {
                let first = &replicas[0];
                if replicas[1..].iter().all(|r| r.db() == first.db())
                    && first.db().len() == self.updates
                {
                    consistent_at = Some(cycle);
                    break;
                }
            }
        }
        let stats = mail.stats();
        ClearinghouseReport {
            consistent_at,
            mail_failures: stats.lost + stats.overflowed,
            mail_delivered: stats.delivered,
            ae_repairs,
        }
    }
}

/// Demonstrates §2's motivating failure: if a site deletes an item by
/// simply forgetting it (no death certificate), anti-entropy resurrects the
/// item from the other replicas. Returns `true` if the item is back at the
/// deleting site afterwards (it always is).
pub fn resurrection_without_certificates(sites: usize, seed: u64) -> bool {
    assert!(sites >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut replicas: Vec<Replica<&str, u32>> = (0..sites)
        .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
        .collect();
    let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    replicas[0].client_update("item", 7);
    converge(&mut replicas, &ae, &mut rng);

    // "Delete" at site 0 by rebuilding its replica without the item — the
    // naive removal the paper warns against.
    let fresh = Replica::new(SiteId::new(0));
    replicas[0] = fresh;

    converge(&mut replicas, &ae, &mut rng);
    replicas[0].db().get(&"item") == Some(&7)
}

/// Configuration for the dormant-death-certificate scenario (§2.1–2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DormantDeathScenario {
    /// Number of sites (including the one that goes down).
    pub sites: usize,
    /// Active retention window `τ₁` in ticks.
    pub tau1: u64,
    /// Dormant retention window `τ₂` in ticks.
    pub tau2: u64,
    /// Number of retention sites `r` for the certificate.
    pub retention: usize,
}

impl Default for DormantDeathScenario {
    fn default() -> Self {
        DormantDeathScenario {
            sites: 20,
            tau1: 50,
            tau2: 100_000,
            retention: 2,
        }
    }
}

/// Outcome of the dormant-certificate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DormantReport {
    /// Dormant certificates awakened during the rejoin.
    pub awakened: usize,
    /// Whether the obsolete item was cancelled everywhere at the end.
    pub obsolete_cancelled: bool,
    /// Sites still holding a (non-dormant) death certificate after GC —
    /// should be 0 once `τ₁` has passed.
    pub certificates_active_after_gc: usize,
}

impl DormantDeathScenario {
    /// Runs the scenario:
    ///
    /// 1. all sites converge on an item;
    /// 2. one site goes down;
    /// 3. the item is deleted with `r` retention sites; the deletion
    ///    propagates and, after `τ₁`, every site garbage-collects (dormant
    ///    copies remain only at retention sites);
    /// 4. the down site rejoins with its obsolete copy — a dormant
    ///    certificate must awaken and cancel it everywhere.
    pub fn run(&self, seed: u64) -> DormantReport {
        assert!(self.sites >= 4);
        assert!(self.retention >= 1 && self.retention < self.sites - 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.sites;
        let mut replicas: Vec<Replica<&str, u32>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);

        // 1. Converge on the item.
        replicas[0].client_update("item", 7);
        converge(&mut replicas, &ae, &mut rng);

        // 2. Site n-1 goes down (simply excluded from further exchanges).
        let down = n - 1;

        // 3. Delete with retention sites (never the down site).
        let retention: Vec<SiteId> = (1..=self.retention)
            .map(|i| SiteId::new(u32::try_from(i).expect("site count fits u32")))
            .collect();
        replicas[0].client_delete_with_retention(&"item", retention);
        converge_excluding(&mut replicas, down, &ae, &mut rng);

        // Time passes beyond tau1; everyone garbage-collects.
        let later = replicas[0].local_time() + self.tau1 + 1;
        let policy = GcPolicy::Dormant {
            tau1: self.tau1,
            tau2: self.tau2,
        };
        let mut active_after_gc = 0;
        for (i, r) in replicas.iter_mut().enumerate() {
            if i == down {
                continue;
            }
            r.advance_clock(later);
            r.collect_garbage(policy);
            active_after_gc += r.db().dead_len();
        }

        // 4. The down site rejoins, obsolete item intact, and gossips
        //    until the awakened certificate has cancelled the obsolete
        //    item everywhere (or a generous exchange budget runs out).
        replicas[down].advance_clock(later);
        let mut awakened = 0;
        let mut obsolete_cancelled = false;
        let mut scratch = epidemic_core::ExchangeScratch::new();
        for _ in 0..50 * n {
            if replicas.iter().all(|r| r.db().get(&"item").is_none()) {
                obsolete_cancelled = true;
                break;
            }
            let (i, j) = random_pair(n, &mut rng);
            let (a, b) = pair_mut(&mut replicas, i, j);
            awakened += ae.exchange_with(a, b, &mut scratch).awakened;
        }
        DormantReport {
            awakened,
            obsolete_cancelled,
            certificates_active_after_gc: active_after_gc,
        }
    }
}

/// Runs random push-pull anti-entropy rounds until all replicas agree.
fn converge(replicas: &mut [Replica<&'static str, u32>], ae: &AntiEntropy, rng: &mut StdRng) {
    let n = replicas.len();
    let mut scratch = epidemic_core::ExchangeScratch::new();
    for _ in 0..50 * n {
        let (i, j) = random_pair(n, rng);
        let (a, b) = pair_mut(replicas, i, j);
        ae.exchange_with(a, b, &mut scratch);
        let first = &replicas[0];
        if replicas[1..].iter().all(|r| r.db() == first.db()) {
            return;
        }
    }
    panic!("replicas failed to converge within the exchange budget");
}

/// As [`converge`], but one site is down and excluded.
fn converge_excluding(
    replicas: &mut [Replica<&'static str, u32>],
    down: usize,
    ae: &AntiEntropy,
    rng: &mut StdRng,
) {
    let n = replicas.len();
    let mut scratch = epidemic_core::ExchangeScratch::new();
    for _ in 0..50 * n {
        let (i, j) = random_pair(n, rng);
        if i == down || j == down {
            continue;
        }
        let (a, b) = pair_mut(replicas, i, j);
        ae.exchange_with(a, b, &mut scratch);
        let up: Vec<_> = (0..n).filter(|&x| x != down).collect();
        let first = &replicas[up[0]];
        if up[1..].iter().all(|&x| replicas[x].db() == first.db()) {
            return;
        }
    }
    panic!("replicas failed to converge within the exchange budget");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearinghouse_reaches_consistency_despite_lossy_mail() {
        let scenario = ClearinghouseScenario {
            sites: 30,
            mail: MailConfig {
                loss_probability: 0.2,
                queue_capacity: 100,
            },
            updates: 10,
            anti_entropy_every: 3,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 2_000,
        };
        let report = scenario.run(11);
        assert!(report.consistent_at.is_some());
        assert!(report.mail_failures > 0, "the mail should actually fail");
        assert!(report.ae_repairs > 0, "anti-entropy should repair losses");
    }

    #[test]
    fn without_anti_entropy_lossy_mail_leaves_holes() {
        let scenario = ClearinghouseScenario {
            sites: 30,
            mail: MailConfig {
                loss_probability: 0.2,
                queue_capacity: 100,
            },
            updates: 10,
            anti_entropy_every: 0, // disabled
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 300,
        };
        let report = scenario.run(11);
        assert_eq!(report.consistent_at, None);
    }

    #[test]
    fn perfect_mail_needs_no_repairs() {
        let scenario = ClearinghouseScenario {
            sites: 20,
            mail: MailConfig::default(),
            updates: 5,
            anti_entropy_every: 4,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 500,
        };
        let report = scenario.run(3);
        assert!(report.consistent_at.is_some());
        assert_eq!(report.mail_failures, 0);
    }

    #[test]
    fn naive_deletion_resurrects() {
        assert!(resurrection_without_certificates(10, 5));
    }

    #[test]
    fn dormant_certificates_cancel_rejoining_obsolete_data() {
        let report = DormantDeathScenario::default().run(17);
        assert!(report.awakened >= 1, "a dormant certificate must awaken");
        assert!(report.obsolete_cancelled);
        assert_eq!(
            report.certificates_active_after_gc, 0,
            "no active certificates should remain after tau1"
        );
    }
}

/// §1.5's partition claim: the peel-back ∪ rumor (activity list) protocol
/// "behaves well when a network partitions and rejoins". Two halves evolve
/// independently while partitioned; after the rejoin the fresh updates are
/// exchanged first and the fleet converges with bounded traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionScenario {
    /// Sites per partition half.
    pub half: usize,
    /// Updates injected in each half while partitioned.
    pub updates_per_half: usize,
    /// Batch size for the activity-list exchanges.
    pub batch: usize,
}

impl Default for PartitionScenario {
    fn default() -> Self {
        PartitionScenario {
            half: 8,
            updates_per_half: 12,
            batch: 4,
        }
    }
}

/// Outcome of [`PartitionScenario::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionReport {
    /// Whether all replicas converged after the rejoin.
    pub converged: bool,
    /// Activity-list exchanges needed after the rejoin.
    pub exchanges_after_rejoin: usize,
    /// Entries shipped after the rejoin.
    pub entries_after_rejoin: usize,
}

impl PartitionScenario {
    /// Runs the scenario with the given seed.
    pub fn run(&self, seed: u64) -> PartitionReport {
        use epidemic_core::activity::{ActivityList, PeelBackRumor};
        assert!(self.half >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 * self.half;
        let mut replicas: Vec<Replica<u32, u64>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let mut lists: Vec<ActivityList<u32>> = (0..n).map(|_| ActivityList::new()).collect();
        let protocol = PeelBackRumor::new(self.batch);

        let exchange = |replicas: &mut Vec<Replica<u32, u64>>,
                        lists: &mut Vec<ActivityList<u32>>,
                        i: usize,
                        j: usize| {
            let (a, b) = pair_mut(replicas, i, j);
            let (la, lb) = pair_mut(lists, i, j);
            protocol.exchange(a, la, b, lb)
        };

        // Partitioned phase: updates and gossip stay within each half.
        for u in 0..self.updates_per_half {
            let time = (u as u64 + 1) * 10;
            for r in replicas.iter_mut() {
                r.advance_clock(time);
            }
            let left = rng.random_range(0..self.half);
            let right = self.half + rng.random_range(0..self.half);
            replicas[left].client_update(u as u32, 1);
            replicas[right].client_update(1_000 + u as u32, 2);
            // A few gossip rounds inside each half.
            for _ in 0..2 {
                for base in [0, self.half] {
                    let (i, j) = random_pair(self.half, &mut rng);
                    exchange(&mut replicas, &mut lists, base + i, base + j);
                }
            }
        }

        // Rejoin: unrestricted gossip until convergence.
        let mut exchanges = 0;
        let mut entries = 0;
        let converged = loop {
            if replicas[1..].iter().all(|r| r.db() == replicas[0].db()) {
                break true;
            }
            if exchanges > 200 * n {
                break false;
            }
            let (i, j) = random_pair(n, &mut rng);
            let stats = exchange(&mut replicas, &mut lists, i, j);
            exchanges += 1;
            entries += stats.total_sent();
        };
        PartitionReport {
            converged,
            exchanges_after_rejoin: exchanges,
            entries_after_rejoin: entries,
        }
    }
}

/// Failure injection: a fraction of sites is down during the initial rumor
/// spreading and comes back only for the anti-entropy backup phase —
/// combining §1.4's failure mode with §1.5's remedy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashScenario {
    /// Total sites.
    pub sites: usize,
    /// Fraction of sites down during rumor spreading.
    pub down_fraction: f64,
    /// Rumor counter parameter `k`.
    pub k: u32,
}

impl Default for CrashScenario {
    fn default() -> Self {
        CrashScenario {
            sites: 40,
            down_fraction: 0.3,
            k: 2,
        }
    }
}

/// Outcome of [`CrashScenario::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Sites missing the update when the rumor quiesced.
    pub missed_by_rumor: usize,
    /// Whether backup anti-entropy achieved full coverage afterwards.
    pub repaired: bool,
}

impl CrashScenario {
    /// Runs the scenario with the given seed.
    pub fn run(&self, seed: u64) -> CrashReport {
        use epidemic_core::rumor::{self, RumorConfig};
        use epidemic_core::{Direction, Feedback, Removal};
        assert!(self.sites >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.sites;
        let policy = UniformPartners::new(n);
        let mut replicas: Vec<Replica<u32, u64>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let down_count = ((n as f64) * self.down_fraction) as usize;
        // Sites 1..=down_count are down; site 0 injects the update.
        let is_down = |i: usize| (1..=down_count).contains(&i);
        replicas[0].client_update(0, 7);
        let cfg = RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: self.k },
        );
        let mut guard = 0;
        while replicas
            .iter()
            .enumerate()
            .any(|(i, r)| !is_down(i) && !r.hot().is_empty())
        {
            let infective: Vec<usize> = (0..n)
                .filter(|&i| !is_down(i) && !replicas[i].hot().is_empty())
                .collect();
            for i in infective {
                // The partner draw happens before the down check: a
                // connection to a down site simply fails.
                let j = policy.attempt(i, &mut rng);
                if is_down(j) {
                    continue;
                }
                let (a, b) = pair_mut(&mut replicas, i, j);
                rumor::push_contact(&cfg, a, b, &mut rng);
            }
            guard += 1;
            if guard > 10_000 {
                break;
            }
        }
        let missed_by_rumor = replicas
            .iter()
            .filter(|r| r.db().entry(&0).is_none())
            .count();

        // Everyone is back up; run backup anti-entropy to convergence.
        let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let mut scratch = epidemic_core::ExchangeScratch::new();
        let mut exchanges = 0;
        let repaired = loop {
            if replicas.iter().all(|r| r.db().entry(&0).is_some()) {
                break true;
            }
            if exchanges > 100 * n {
                break false;
            }
            let (i, j) = random_pair(n, &mut rng);
            let (a, b) = pair_mut(&mut replicas, i, j);
            ae.exchange_with(a, b, &mut scratch);
            exchanges += 1;
        };
        CrashReport {
            missed_by_rumor,
            repaired,
        }
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;

    #[test]
    fn partition_rejoin_converges_with_bounded_traffic() {
        let report = PartitionScenario::default().run(21);
        assert!(report.converged);
        // Each update must cross to 8 other sites: entries shipped is
        // bounded by a small multiple of updates x sites.
        assert!(report.entries_after_rejoin < 24 * 16 * 4);
    }

    #[test]
    fn partition_rejoin_handles_conflicts() {
        // Same keys written on both sides of the partition: timestamps
        // decide, and both halves agree after rejoin.
        let scenario = PartitionScenario {
            updates_per_half: 6,
            ..PartitionScenario::default()
        };
        for seed in 0..3 {
            assert!(scenario.run(seed).converged);
        }
    }

    #[test]
    fn downed_sites_miss_rumors_but_backup_repairs() {
        let report = CrashScenario::default().run(5);
        assert!(
            report.missed_by_rumor >= 12,
            "the down sites cannot hear the rumor: {report:?}"
        );
        assert!(report.repaired);
    }

    #[test]
    fn crash_free_run_misses_almost_nobody() {
        let report = CrashScenario {
            sites: 40,
            down_fraction: 0.0,
            k: 4,
        }
        .run(6);
        assert!(report.missed_by_rumor <= 2, "{report:?}");
        assert!(report.repaired);
    }
}
