//! The `.scenario` files shipped with the crate (`crates/sim/scenarios/`).
//!
//! Four re-express the historical drivers ([`super::legacy`]) — their
//! event timelines parse to exactly what the corresponding
//! `to_scenario()` builds, pinned by tests here — and the rest are new
//! runs only expressible declaratively: the failures.rs churn model on a
//! grid, a flash crowd under lossy links, and churn across a partition
//! heal. `repro fig-scenarios` sweeps all of them.

use super::spec::Scenario;

/// Name → source text of every bundled scenario, in sweep order.
pub const SOURCES: &[(&str, &str)] = &[
    (
        "clearinghouse",
        include_str!("../../scenarios/clearinghouse.scenario"),
    ),
    (
        "dormant-death",
        include_str!("../../scenarios/dormant-death.scenario"),
    ),
    (
        "partition",
        include_str!("../../scenarios/partition.scenario"),
    ),
    ("crash", include_str!("../../scenarios/crash.scenario")),
    ("churn", include_str!("../../scenarios/churn.scenario")),
    (
        "flash-crowd-lossy",
        include_str!("../../scenarios/flash-crowd-lossy.scenario"),
    ),
    (
        "churn-partition-heal",
        include_str!("../../scenarios/churn-partition-heal.scenario"),
    ),
];

/// Parses every bundled scenario. Panics only if a shipped file is
/// malformed, which the tests below rule out.
pub fn all() -> Vec<Scenario> {
    SOURCES
        .iter()
        .map(|(name, text)| {
            let spec = Scenario::parse(text)
                .unwrap_or_else(|e| panic!("bundled scenario {name} is malformed: {e}"));
            assert_eq!(&spec.name, name, "bundled file name matches its spec");
            spec
        })
        .collect()
}

/// Parses the bundled scenario with the given name, if one exists.
pub fn by_name(name: &str) -> Option<Scenario> {
    SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(n, text)| Scenario::parse(text).unwrap_or_else(|e| panic!("bundled {n}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::super::legacy::{
        ClearinghouseScenario, CrashScenario, DormantDeathScenario, PartitionScenario,
    };
    use super::*;

    #[test]
    fn every_bundled_scenario_parses_and_validates() {
        let specs = all();
        assert_eq!(specs.len(), SOURCES.len());
        for spec in &specs {
            spec.validate().expect("bundled specs are coherent");
        }
    }

    #[test]
    fn bundled_files_round_trip_through_render() {
        for spec in all() {
            let rendered = spec.render();
            let reparsed = Scenario::parse(&rendered).expect("render output parses");
            assert_eq!(reparsed, spec, "render/parse round-trip for {}", spec.name);
        }
    }

    /// The four legacy drivers and their bundled files describe the same
    /// runs: the file is exactly the adapter's spec (and, transitively,
    /// its canonical rendering — so regenerating a file after an adapter
    /// change is `to_scenario().render()`).
    #[test]
    fn legacy_adapters_match_their_bundled_files() {
        let clearinghouse = ClearinghouseScenario::default().to_scenario();
        assert_eq!(by_name("clearinghouse").unwrap(), clearinghouse);
        assert_eq!(
            SOURCES[0].1,
            clearinghouse.render(),
            "clearinghouse.scenario is the canonical rendering"
        );
        assert_eq!(
            by_name("dormant-death").unwrap(),
            DormantDeathScenario::default().to_scenario()
        );
        assert_eq!(
            by_name("partition").unwrap(),
            PartitionScenario::default().to_scenario()
        );
        assert_eq!(
            by_name("crash").unwrap(),
            CrashScenario::default().to_scenario()
        );
    }
}
