//! Lowering a declarative [`Scenario`] onto the shared [`CycleEngine`].
//!
//! [`ScenarioEngine`] compiles the spec once (validation, topology
//! construction) and then runs it any number of times; each run is a pure
//! function of `(spec, seed)` — the engine draws from a single
//! [`StdRng`] in a fixed order (fault events, churn transitions, workload
//! operations, roster shuffle, partner draws, loss draws, contact
//! internals), so results are byte-identical at any `EPIDEMIC_THREADS`
//! (parallelism only ever runs *whole trials* concurrently, never splits
//! one run).
//!
//! The lowering uses the existing seams rather than a new loop:
//! partitions and lossy links mask contacts *after* the partner draw (a
//! blocked contact pays its RNG cost, exactly like the engine's admission
//! rule for down sites), the workload rides on
//! [`UpdateInjector`](crate::engine::UpdateInjector)'s carry accumulator,
//! and per-scenario metrics come out of the same
//! [`ContactStats`]/[`EngineTotals`] plumbing as every other driver.

use epidemic_core::activity::{ActivityList, PeelBackRumor};
use epidemic_core::direct_mail::MailStats;
use epidemic_core::rumor::{self, RumorConfig, RumorScratch};
use epidemic_core::{
    AntiEntropy, BackupAntiEntropy, Comparison, DirectMail, Direction, ExchangeScratch, MailSystem,
    Redistribution, Replica,
};
use epidemic_db::{GcPolicy, SiteId};
use epidemic_net::{topologies, PartnerSampler, Routes};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::spec::{FaultEvent, FaultKind, Scenario, SiteSet, SpecError, StopRule, TopologySpec};
use crate::engine::{
    ContactStats, CycleEngine, EngineTotals, EpidemicProtocol, Observer, PartnerPolicy, Roster,
    SirCounts, SirView, SpatialPartners, UniformPartners, UpdateInjector,
};
use crate::stats::Summary;
use crate::util::pair_mut;

/// Contact totals snapshotted at the moment a [`FaultEvent`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Milestone {
    /// Cycle at which the event fired.
    pub cycle: u32,
    /// The event's [`FaultKind::label`].
    pub label: &'static str,
    /// Engine contacts completed before the event.
    pub contacts: u64,
    /// Database entries sent before the event.
    pub sent: u64,
    /// Sites holding every open key at that moment (`sites` when no key
    /// was open).
    pub covered: usize,
    /// Sites down at that moment (before the event applied).
    pub down: usize,
}

/// The outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (copied from the spec).
    pub name: String,
    /// Cycles executed.
    pub cycles: u32,
    /// Aggregate engine contact totals.
    pub totals: EngineTotals,
    /// Cycle at which the stop rule held, `None` if the run hit
    /// [`Scenario::max_cycles`] first.
    pub converged_at: Option<u32>,
    /// Fraction of (site, key) deliveries still missing over all injected
    /// live keys — `0.0` when every key reached every site (the paper's
    /// residue, generalized to multi-update runs).
    pub residue: f64,
    /// Entries sent per site (the paper's traffic metric).
    pub traffic_per_site: f64,
    /// Distribution of per-key full-coverage delays in cycles (only keys
    /// that reached every site contribute).
    pub delay: Summary,
    /// Client updates injected (workload + fault events).
    pub updates: u64,
    /// Client deletes performed.
    pub deletes: u64,
    /// Client reads performed.
    pub reads: u64,
    /// Reads that found no live value.
    pub read_misses: u64,
    /// Contacts blocked by a partition cut or link loss.
    pub blocked_contacts: u64,
    /// Site-cycles spent down (summed over sites and cycles).
    pub down_site_cycles: u64,
    /// Dormant death certificates awakened by obsolete incoming data.
    pub awakened: u64,
    /// Entries shipped by anti-entropy exchanges.
    pub ae_sent: u64,
    /// Entries shipped by rumor or peel-back exchanges.
    pub rumor_sent: u64,
    /// Mail transport counters, when the spec has a mail line.
    pub mail: Option<MailStats>,
    /// Active death certificates remaining right after the last `gc`
    /// event, when the timeline had one.
    pub certs_after_gc: Option<u64>,
    /// Whether every deleted key's live copy is gone from every site.
    pub cancelled: bool,
    /// One snapshot per fired fault event, in firing order.
    pub milestones: Vec<Milestone>,
}

impl ScenarioReport {
    /// The first milestone with the given label, if that event fired.
    pub fn milestone(&self, label: &str) -> Option<&Milestone> {
        self.milestones.iter().find(|m| m.label == label)
    }
}

/// Which contact mechanism a cycle runs (at most one per cycle:
/// anti-entropy on its scheduled cycles, otherwise rumor or peel-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AntiEntropy,
    Rumor,
    Peel,
    Idle,
}

/// An injected key that has not yet reached every site.
#[derive(Debug, Clone)]
struct OpenKey {
    key: u32,
    injected: u32,
    have: Vec<bool>,
    have_count: usize,
}

/// A compiled scenario, ready to run.
///
/// # Example
///
/// ```
/// use epidemic_sim::scenario::{Scenario, ScenarioEngine};
///
/// let text = "\
/// scenario doc-example
/// sites 24
/// anti-entropy every 1 from 0 redistribute none
/// at 0 update site 0
/// until coverage
/// max-cycles 100
/// ";
/// let spec = Scenario::parse(text).unwrap();
/// let report = ScenarioEngine::new(spec).unwrap().run(7);
/// assert_eq!(report.residue, 0.0);
/// assert!(report.converged_at.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioEngine {
    spec: Scenario,
}

impl ScenarioEngine {
    /// Validates and compiles `spec`.
    pub fn new(spec: Scenario) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(ScenarioEngine { spec })
    }

    /// The compiled spec.
    pub fn spec(&self) -> &Scenario {
        &self.spec
    }

    /// Runs the scenario with the spec's own topology.
    pub fn run(&self, seed: u64) -> ScenarioReport {
        self.run_observed(seed, &mut ())
    }

    /// As [`ScenarioEngine::run`], reporting every contact and cycle end
    /// to `observer`.
    pub fn run_observed<O>(&self, seed: u64, observer: &mut O) -> ScenarioReport
    where
        O: Observer<ScenarioProtocol>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        match self.spec.topology {
            TopologySpec::Uniform => {
                let policy = UniformPartners::new(self.spec.sites);
                self.run_with_policy(&mut rng, &policy, None, observer)
            }
            TopologySpec::Grid {
                rows,
                cols,
                spatial,
            } => {
                let topo = topologies::grid(&[rows, cols]);
                let routes = Routes::compute(&topo);
                let sampler = PartnerSampler::new(&topo, &routes, spatial.to_net());
                let policy = SpatialPartners::new(topo.sites(), &sampler);
                self.run_with_policy(&mut rng, &policy, Some(topo.sites()), observer)
            }
            TopologySpec::Ring { spatial } => {
                let topo = topologies::ring(self.spec.sites);
                let routes = Routes::compute(&topo);
                let sampler = PartnerSampler::new(&topo, &routes, spatial.to_net());
                let policy = SpatialPartners::new(topo.sites(), &sampler);
                self.run_with_policy(&mut rng, &policy, Some(topo.sites()), observer)
            }
        }
    }

    /// Runs the scenario against a caller-supplied partner policy and site
    /// id list, bypassing the spec's `topology` line — the seam the legacy
    /// churn driver uses to keep its own [`PartnerSampler`] while the
    /// fault timeline and stop rule come from a spec. `rng` state is
    /// consumed exactly as [`ScenarioEngine::run`] would after topology
    /// setup, so a caller that reproduces the setup draws gets identical
    /// results.
    pub fn run_with_policy<L, O>(
        &self,
        rng: &mut StdRng,
        policy: &L,
        site_ids: Option<&[SiteId]>,
        observer: &mut O,
    ) -> ScenarioReport
    where
        L: PartnerPolicy + ?Sized,
        O: Observer<ScenarioProtocol>,
    {
        let everyone: Vec<SiteId> = match site_ids {
            Some(ids) => ids.to_vec(),
            None => (0..self.spec.sites)
                .map(|i| SiteId::new(u32::try_from(i).expect("site count fits u32")))
                .collect(),
        };
        assert_eq!(
            everyone.len(),
            self.spec.sites,
            "site id list must cover the spec's site count"
        );
        let mut protocol = ScenarioProtocol::new(&self.spec, everyone);
        // Cycle-0 events fire before the first engine cycle (initial
        // updates, a partition present from the start, churn from cycle 1).
        protocol.apply_due_events(0, rng);
        let report = CycleEngine::new().max_cycles(self.spec.max_cycles).run(
            &mut protocol,
            policy,
            rng,
            observer,
        );
        protocol.into_report(&self.spec, report)
    }
}

/// The [`EpidemicProtocol`] a [`ScenarioEngine`] drives. Public so
/// observers can be written against it; construction stays internal.
pub struct ScenarioProtocol {
    // --- static configuration, copied out of the spec ---
    events: Vec<FaultEvent>,
    until: StopRule,
    rumor: Option<RumorConfig>,
    ae: Option<super::spec::AntiEntropySpec>,
    redistribution: Redistribution,
    workload: super::spec::Workload,
    everyone: Vec<SiteId>,
    // --- simulation state ---
    replicas: Vec<Replica<u32, u64>>,
    lists: Vec<ActivityList<u32>>,
    mail: Option<MailSystem<u32, u64>>,
    up: Vec<bool>,
    group: Vec<u32>,
    partitioned: bool,
    loss: f64,
    churn: Option<(f64, f64)>,
    skew: Vec<u64>,
    clock_bump: u64,
    injector: UpdateInjector,
    ops_done: u64,
    live_keys: Vec<u32>,
    deleted_keys: Vec<u32>,
    open: Vec<OpenKey>,
    closed: u64,
    next_event: usize,
    phase: Phase,
    // --- mechanism objects and scratch ---
    exchange: AntiEntropy,
    backup: BackupAntiEntropy,
    peel: Option<PeelBackRumor>,
    direct: DirectMail,
    rumor_scratch: RumorScratch<u32>,
    ae_scratch: ExchangeScratch<u32, u64>,
    newly_mailed: Vec<usize>,
    // --- counters ---
    updates: u64,
    deletes: u64,
    reads: u64,
    read_misses: u64,
    blocked_contacts: u64,
    down_site_cycles: u64,
    awakened: u64,
    ae_sent: u64,
    rumor_sent: u64,
    contacts: u64,
    sent: u64,
    delay: Summary,
    certs_after_gc: Option<u64>,
    milestones: Vec<Milestone>,
}

impl ScenarioProtocol {
    fn new(spec: &Scenario, everyone: Vec<SiteId>) -> Self {
        let n = spec.sites;
        let replicas: Vec<Replica<u32, u64>> = everyone.iter().map(|&s| Replica::new(s)).collect();
        let peel = spec.protocol.peel_back.map(PeelBackRumor::new);
        let lists = if peel.is_some() {
            vec![ActivityList::new(); n]
        } else {
            Vec::new()
        };
        let mut protocol = ScenarioProtocol {
            events: spec.events.clone(),
            until: spec.until,
            rumor: spec.protocol.rumor,
            ae: spec.protocol.anti_entropy,
            redistribution: spec
                .protocol
                .anti_entropy
                .map_or(Redistribution::None, |ae| ae.redistribution),
            workload: spec.workload,
            everyone,
            replicas,
            lists,
            mail: spec.protocol.mail.map(|config| MailSystem::new(n, config)),
            up: vec![true; n],
            group: vec![0; n],
            partitioned: false,
            loss: 0.0,
            churn: None,
            skew: vec![0; n],
            clock_bump: 0,
            injector: UpdateInjector::new(spec.workload.rate),
            ops_done: 0,
            live_keys: Vec::new(),
            deleted_keys: Vec::new(),
            open: Vec::new(),
            closed: 0,
            next_event: 0,
            phase: Phase::Idle,
            exchange: AntiEntropy::new(Direction::PushPull, Comparison::Full),
            backup: BackupAntiEntropy::new(
                spec.protocol
                    .anti_entropy
                    .map_or(Redistribution::None, |ae| ae.redistribution),
            ),
            peel,
            direct: DirectMail::new(),
            rumor_scratch: RumorScratch::new(),
            ae_scratch: ExchangeScratch::new(),
            newly_mailed: Vec::new(),
            updates: 0,
            deletes: 0,
            reads: 0,
            read_misses: 0,
            blocked_contacts: 0,
            down_site_cycles: 0,
            awakened: 0,
            ae_sent: 0,
            rumor_sent: 0,
            contacts: 0,
            sent: 0,
            delay: Summary::new(),
            certs_after_gc: None,
            milestones: Vec::new(),
        };
        // The roster/activity questions for cycle 1 are asked before
        // `begin_cycle(1)` recomputes the phase, so seed it here.
        protocol.phase = protocol.phase_for(1);
        protocol
    }

    fn phase_for(&self, cycle: u32) -> Phase {
        if let Some(ae) = &self.ae {
            if cycle >= ae.from && cycle.is_multiple_of(ae.every) {
                return Phase::AntiEntropy;
            }
        }
        if self.rumor.is_some() {
            return Phase::Rumor;
        }
        if self.peel.is_some() {
            return Phase::Peel;
        }
        Phase::Idle
    }

    fn site_count_internal(&self) -> usize {
        self.replicas.len()
    }

    /// Sites currently holding every open key (`n` when nothing is open).
    fn covered_count(&self) -> usize {
        let n = self.site_count_internal();
        if self.open.is_empty() {
            return n;
        }
        (0..n)
            .filter(|&i| self.open.iter().all(|k| k.have[i]))
            .count()
    }

    fn resolve_set(&self, set: &SiteSet) -> Vec<usize> {
        let n = self.site_count_internal();
        match set {
            SiteSet::Site(i) => vec![*i],
            SiteSet::Span { from, count } => (*from..from + count).collect(),
            SiteSet::Last(count) => (n - count..n).collect(),
            // Sites 1..=floor(n·f): site 0 is conventionally the injection
            // origin and stays up (the legacy crash driver's convention).
            SiteSet::Fraction(f) => (1..=((n as f64) * f) as usize).collect(),
            SiteSet::All => (0..n).collect(),
        }
    }

    /// Fires every event scheduled at or before `cycle`, in listed order,
    /// snapshotting a [`Milestone`] before each one applies.
    fn apply_due_events(&mut self, cycle: u32, rng: &mut StdRng) {
        while self.next_event < self.events.len() && self.events[self.next_event].cycle <= cycle {
            let event = self.events[self.next_event].clone();
            self.next_event += 1;
            self.milestones.push(Milestone {
                cycle,
                label: event.kind.label(),
                contacts: self.contacts,
                sent: self.sent,
                covered: self.covered_count(),
                down: self.up.iter().filter(|&&u| !u).count(),
            });
            self.apply_event(cycle, &event.kind, rng);
        }
    }

    fn apply_event(&mut self, cycle: u32, kind: &FaultKind, rng: &mut StdRng) {
        let n = self.site_count_internal();
        match *kind {
            FaultKind::Update { site, count } => {
                for _ in 0..count {
                    let at = site.unwrap_or_else(|| rng.random_range(0..n));
                    let key = self.injector.alloc_key();
                    self.inject_update(cycle, at, key, rng);
                }
            }
            FaultKind::Delete {
                site,
                key,
                retention,
            } => {
                self.delete_key(site, key, retention);
            }
            FaultKind::Crash(ref set) => {
                for i in self.resolve_set(set) {
                    self.up[i] = false;
                }
            }
            FaultKind::Recover(ref set) => {
                for i in self.resolve_set(set) {
                    self.up[i] = true;
                }
            }
            FaultKind::Churn { fail, recover } => self.churn = Some((fail, recover)),
            FaultKind::ChurnStop => self.churn = None,
            FaultKind::Partition(groups) => {
                for (i, g) in self.group.iter_mut().enumerate() {
                    *g = u32::try_from(i * groups / n).expect("group fits u32");
                }
                self.partitioned = true;
            }
            FaultKind::Heal => self.partitioned = false,
            FaultKind::Loss(p) => self.loss = p,
            FaultKind::LossEnd => self.loss = 0.0,
            FaultKind::Gc { tau1, tau2 } => {
                // Jump every up site past the active window so the sweep
                // actually ages out certificates; down sites keep their
                // stale clocks until they recover.
                self.clock_bump += tau1 + 1;
                let mut active_certs = 0u64;
                for i in 0..n {
                    if !self.up[i] {
                        continue;
                    }
                    let time = u64::from(cycle) + self.clock_bump + self.skew[i];
                    self.replicas[i].advance_clock(time);
                    self.replicas[i].collect_garbage(GcPolicy::Dormant { tau1, tau2 });
                    active_certs += self.replicas[i].db().dead_len() as u64;
                }
                self.certs_after_gc = Some(active_certs);
            }
            FaultKind::Skew { site, offset } => self.skew[site] = offset,
        }
    }

    /// Applies one client update at `site` and registers its coverage
    /// tracking; with a mail transport, the origin also broadcasts it.
    fn inject_update(&mut self, cycle: u32, site: usize, key: u32, rng: &mut StdRng) {
        self.replicas[site].client_update(key, u64::from(cycle));
        if self.rumor.is_none() && self.peel.is_none() {
            // No rumor mechanism will ever drain the hot list; clear it so
            // quiescence and activity stay meaningful (the legacy
            // anti-entropy drivers did exactly this after injecting).
            self.replicas[site].hot_mut().remove(&key);
        }
        if let Some(mail) = &mut self.mail {
            self.direct
                .broadcast(&self.replicas[site], &self.everyone, &key, mail, rng);
        }
        let mut have = vec![false; self.site_count_internal()];
        have[site] = true;
        self.open.push(OpenKey {
            key,
            injected: cycle,
            have,
            have_count: 1,
        });
        self.live_keys.push(key);
        self.updates += 1;
    }

    fn delete_key(&mut self, site: usize, key: u32, retention: u32) {
        let n = self.site_count_internal();
        let retention_sites: Vec<SiteId> = (0..retention as usize)
            .map(|t| self.everyone[(site + 1 + t) % n])
            .collect();
        self.replicas[site].client_delete_with_retention(&key, retention_sites);
        if self.rumor.is_none() && self.peel.is_none() {
            self.replicas[site].hot_mut().remove(&key);
        }
        self.live_keys.retain(|&k| k != key);
        self.open.retain(|k| k.key != key);
        if !self.deleted_keys.contains(&key) {
            self.deleted_keys.push(key);
        }
        self.deletes += 1;
    }

    /// Runs the weighted workload mix for one cycle.
    fn run_workload(&mut self, cycle: u32, rng: &mut StdRng) {
        if self.workload.rate <= 0.0 {
            return;
        }
        let mut due = u64::from(self.injector.due());
        if let Some(budget) = self.workload.budget {
            due = due.min(budget.saturating_sub(self.ops_done));
        }
        let mix = self.workload.mix;
        let total = mix.total();
        let n = self.site_count_internal();
        for _ in 0..due {
            self.ops_done += 1;
            // Single-category mixes skip the kind draw: weights only cost
            // RNG state when there is a real choice to make.
            let roll = if total == mix.update {
                0
            } else if total == mix.delete {
                mix.update
            } else if total == mix.read {
                mix.update + mix.delete
            } else {
                rng.random_range(0..total)
            };
            let site = rng.random_range(0..n);
            if roll < mix.update {
                let key = self.injector.alloc_key();
                self.inject_update(cycle, site, key, rng);
            } else if roll < mix.update + mix.delete {
                if self.live_keys.is_empty() {
                    continue;
                }
                let idx = rng.random_range(0..self.live_keys.len());
                let key = self.live_keys[idx];
                self.delete_key(site, key, self.workload.retention);
            } else {
                self.reads += 1;
                let minted = self.injector.injected();
                if minted == 0 {
                    self.read_misses += 1;
                    continue;
                }
                let key = rng.random_range(0..minted);
                if self.replicas[site].db().get(&key).is_none() {
                    self.read_misses += 1;
                }
            }
        }
    }

    /// Whether the contact `i → j` is severed this cycle (partition cut
    /// first — no RNG — then one loss draw).
    fn contact_blocked(&mut self, i: usize, j: usize, rng: &mut StdRng) -> bool {
        if self.partitioned && self.group[i] != self.group[j] {
            return true;
        }
        self.loss > 0.0 && rng.random::<f64>() < self.loss
    }

    /// Refreshes coverage flags for sites `i` and `j` after a contact and
    /// closes any key that now covers every site.
    fn mark_pair(&mut self, cycle: u32, i: usize, j: usize) {
        let n = self.site_count_internal();
        let mut idx = 0;
        while idx < self.open.len() {
            let key = self.open[idx].key;
            for site in [i, j] {
                if !self.open[idx].have[site] && self.replicas[site].db().entry(&key).is_some() {
                    self.open[idx].have[site] = true;
                    self.open[idx].have_count += 1;
                }
            }
            if self.open[idx].have_count == n {
                let done = self.open.swap_remove(idx);
                self.delay.push(f64::from(cycle - done.injected));
                self.closed += 1;
            } else {
                idx += 1;
            }
        }
    }

    /// Full coverage rescan for one site (used after mail delivery, which
    /// can inform a site without any engine contact).
    fn mark_site(&mut self, cycle: u32, site: usize) {
        self.mark_pair(cycle, site, site);
    }

    fn workload_done(&self) -> bool {
        self.workload.rate <= 0.0
            || self
                .workload
                .budget
                .is_some_and(|budget| self.ops_done >= budget)
    }

    fn databases_equal(&self) -> bool {
        let first = self.replicas[0].db();
        self.replicas.iter().skip(1).all(|r| r.db() == first)
    }

    fn all_cancelled(&self) -> bool {
        self.deleted_keys
            .iter()
            .all(|key| self.replicas.iter().all(|r| r.db().get(key).is_none()))
    }

    fn residue(&self) -> f64 {
        let n = self.site_count_internal();
        let total_keys = self.closed + self.open.len() as u64;
        if total_keys == 0 {
            return 0.0;
        }
        let missing: u64 = self.open.iter().map(|k| (n - k.have_count) as u64).sum();
        missing as f64 / (n as u64 * total_keys) as f64
    }

    fn into_report(self, spec: &Scenario, report: crate::engine::EngineReport) -> ScenarioReport {
        let n = self.site_count_internal();
        let finished_early = report.cycles < spec.max_cycles;
        let cancelled = !self.deleted_keys.is_empty() && self.all_cancelled();
        ScenarioReport {
            name: spec.name.clone(),
            cycles: report.cycles,
            totals: report.totals,
            converged_at: finished_early.then_some(report.cycles),
            residue: self.residue(),
            traffic_per_site: report.totals.sent as f64 / n as f64,
            delay: self.delay,
            updates: self.updates,
            deletes: self.deletes,
            reads: self.reads,
            read_misses: self.read_misses,
            blocked_contacts: self.blocked_contacts,
            down_site_cycles: self.down_site_cycles,
            awakened: self.awakened,
            ae_sent: self.ae_sent,
            rumor_sent: self.rumor_sent,
            mail: self.mail.as_ref().map(MailSystem::stats),
            certs_after_gc: self.certs_after_gc,
            cancelled,
            milestones: self.milestones,
        }
    }
}

impl EpidemicProtocol for ScenarioProtocol {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn roster(&self) -> Roster {
        match self.phase {
            Phase::AntiEntropy | Phase::Peel => Roster::Everyone,
            Phase::Rumor => match self.rumor.expect("rumor phase has a config").direction {
                Direction::Push => Roster::Active,
                Direction::Pull | Direction::PushPull => Roster::Everyone,
            },
            // An idle cycle costs nothing: the Active roster is empty.
            Phase::Idle => Roster::Active,
        }
    }

    fn is_active(&self, i: usize) -> bool {
        match self.phase {
            Phase::AntiEntropy | Phase::Peel => self.up[i],
            Phase::Rumor => self.up[i] && !self.replicas[i].hot().is_empty(),
            Phase::Idle => false,
        }
    }

    fn finished(&self, _cycle: u32, active: &[usize]) -> bool {
        if self.next_event < self.events.len() || !self.workload_done() {
            return false;
        }
        match self.until {
            StopRule::Bound => false,
            StopRule::Quiescent => active.is_empty(),
            StopRule::Coverage => self.open.is_empty(),
            StopRule::Converged => self.open.is_empty() && self.databases_equal(),
            StopRule::Cancelled => !self.deleted_keys.is_empty() && self.all_cancelled(),
        }
    }

    fn begin_cycle(&mut self, cycle: u32, rng: &mut StdRng) {
        // 1. Fault events scheduled for this cycle, in listed order.
        self.apply_due_events(cycle, rng);
        // 2. Churn transitions: exactly one draw per site per cycle while
        //    churn is on (the legacy churn driver's draw discipline).
        if let Some((fail, recover)) = self.churn {
            for status in self.up.iter_mut() {
                if *status {
                    if rng.random::<f64>() < fail {
                        *status = false;
                    }
                } else if rng.random::<f64>() < recover {
                    *status = true;
                }
            }
        }
        self.down_site_cycles += self.up.iter().filter(|&&u| !u).count() as u64;
        // 3. Clocks: up sites track the cycle count (plus GC jumps and any
        //    per-site skew); down sites stay frozen until they recover.
        for i in 0..self.replicas.len() {
            if self.up[i] {
                let time = u64::from(cycle) + self.clock_bump + self.skew[i];
                self.replicas[i].advance_clock(time);
            }
        }
        // 4. Weighted client workload.
        self.run_workload(cycle, rng);
        // 5. Mail delivery to up sites (queued letters survive an outage
        //    until the destination recovers or the queue overflows).
        if self.mail.is_some() {
            self.newly_mailed.clear();
            let direct = self.direct;
            if let Some(mail) = &mut self.mail {
                for i in 0..self.replicas.len() {
                    if !self.up[i] {
                        continue;
                    }
                    if direct.deliver(&mut self.replicas[i], mail) > 0 {
                        self.newly_mailed.push(i);
                    }
                }
            }
            let delivered = std::mem::take(&mut self.newly_mailed);
            for &i in &delivered {
                self.mark_site(cycle, i);
            }
            self.newly_mailed = delivered;
        }
        // 6. Which mechanism runs this cycle.
        self.phase = self.phase_for(cycle);
    }

    fn initiates(&self, i: usize) -> bool {
        self.phase != Phase::Idle && self.up[i]
    }

    fn admits(&self, j: usize) -> bool {
        self.up[j]
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, rng: &mut StdRng) -> ContactStats {
        self.contacts += 1;
        if self.contact_blocked(i, j, rng) {
            self.blocked_contacts += 1;
            return ContactStats::default();
        }
        let stats = match self.phase {
            Phase::AntiEntropy => {
                if self.redistribution == Redistribution::None {
                    let (a, b) = pair_mut(&mut self.replicas, i, j);
                    let stats = self.exchange.exchange_with(a, b, &mut self.ae_scratch);
                    self.awakened += stats.awakened as u64;
                    let sent = u64::try_from(stats.total_sent()).unwrap_or(u64::MAX);
                    self.ae_sent += sent;
                    ContactStats { sent, useful: sent }
                } else {
                    let (a, b) = pair_mut(&mut self.replicas, i, j);
                    let outcome = self.backup.exchange(a, b);
                    self.awakened += outcome.stats.awakened as u64;
                    let sent = u64::try_from(outcome.stats.total_sent()).unwrap_or(u64::MAX);
                    self.ae_sent += sent;
                    if let Some(mail) = &mut self.mail {
                        for (key, entry) in outcome.remail {
                            for &to in &self.everyone {
                                mail.post(to, key, entry.clone(), rng);
                            }
                        }
                    }
                    ContactStats { sent, useful: sent }
                }
            }
            Phase::Rumor => {
                let cfg = self.rumor.expect("rumor phase has a config");
                let stats = match cfg.direction {
                    Direction::Push => {
                        let (a, b) = pair_mut(&mut self.replicas, i, j);
                        rumor::push_contact_with(&cfg, a, b, rng, &mut self.rumor_scratch.a_keys)
                    }
                    Direction::Pull => {
                        let (requester, source) = pair_mut(&mut self.replicas, i, j);
                        rumor::pull_contact_with(
                            &cfg,
                            requester,
                            source,
                            rng,
                            &mut self.rumor_scratch.b_keys,
                        )
                    }
                    Direction::PushPull => {
                        let (a, b) = pair_mut(&mut self.replicas, i, j);
                        rumor::push_pull_contact_with(&cfg, a, b, rng, &mut self.rumor_scratch)
                    }
                };
                self.rumor_sent += u64::try_from(stats.sent).unwrap_or(u64::MAX);
                stats.into()
            }
            Phase::Peel => {
                let peel = self.peel.as_ref().expect("peel phase has a protocol");
                let (a, b) = pair_mut(&mut self.replicas, i, j);
                let (la, lb) = pair_mut(&mut self.lists, i, j);
                let stats = peel.exchange(a, la, b, lb);
                let sent = u64::try_from(stats.total_sent()).unwrap_or(u64::MAX);
                self.rumor_sent += sent;
                ContactStats { sent, useful: sent }
            }
            // `initiates` is false on idle cycles, so this cannot run; keep
            // it total instead of panicking in release builds.
            Phase::Idle => ContactStats::default(),
        };
        self.mark_pair(cycle, i, j);
        self.sent += stats.sent;
        stats
    }

    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        if let Some(cfg) = self.rumor {
            if cfg.direction == Direction::Pull {
                for site in &mut self.replicas {
                    rumor::end_cycle(&cfg, site);
                }
            }
        }
    }
}

impl SirView for ScenarioProtocol {
    fn sir_counts(&self) -> SirCounts {
        let n = self.replicas.len();
        let covered = self.covered_count();
        let hot = self.replicas.iter().filter(|r| !r.hot().is_empty()).count();
        // Clamp so the compartments always sum to n even when a hot site
        // does not yet hold every open key (multi-update runs).
        let infective = hot.min(covered);
        SirCounts {
            susceptible: n - covered,
            infective,
            removed: covered - infective,
        }
    }
}
