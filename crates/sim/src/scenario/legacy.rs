//! The four historical scenario drivers, re-expressed as declarative
//! specs (paper §1.2, §1.5, §2).
//!
//! Each public type below used to hand-roll its own simulation loop;
//! now each is a thin adapter: its `to_scenario` builds the
//! equivalent [`Scenario`] spec (byte-identical to the bundled
//! `.scenario` file of the same name — pinned in [`super::bundled`]) and
//! `run` maps the [`super::ScenarioReport`] back onto the original report
//! shape. The behavioral assertions the old drivers carried (goldened
//! thresholds, not RNG streams — the bespoke loops drew randomness in
//! driver-specific orders no shared engine could reproduce) live on in
//! this module's tests.

use epidemic_core::rumor::{Feedback, Removal, RumorConfig};
use epidemic_core::{AntiEntropy, Comparison, Direction, MailConfig, Redistribution, Replica};
use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::engine::ScenarioEngine;
use super::spec::{
    AntiEntropySpec, FaultEvent, FaultKind, Scenario, SiteSet, StopRule, Workload, WorkloadMix,
};
use crate::engine::protocols::random_pair;
use crate::util::pair_mut;

/// An update-only workload injecting `rate` updates per cycle until
/// `budget` have been placed.
fn update_workload(rate: f64, budget: u64) -> Workload {
    Workload {
        rate,
        budget: Some(budget),
        retention: 1,
        mix: WorkloadMix {
            update: 1,
            delete: 0,
            read: 0,
        },
    }
}

/// Configuration for the Clearinghouse-style workload (§1.5): direct mail
/// for initial distribution (fallible), periodic anti-entropy as the
/// backup, with a configurable redistribution policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ClearinghouseScenario {
    /// Number of database sites.
    pub sites: usize,
    /// Failure model of the mail transport.
    pub mail: MailConfig,
    /// Client updates injected, one per cycle starting at cycle 1, each at
    /// a random site.
    pub updates: usize,
    /// Anti-entropy runs every this many cycles (0 disables it).
    pub anti_entropy_every: u32,
    /// What anti-entropy does with discovered updates (§1.5).
    pub redistribution: Redistribution,
    /// When `Some(k)`, sites run push rumor mongering with feedback
    /// counters at threshold `k` — the initial-distribution role rumors
    /// play in §1.5, and what makes [`Redistribution::Rumor`] actually
    /// spread rediscovered updates.
    pub rumor_k: Option<u32>,
    /// Safety bound on simulated cycles.
    pub max_cycles: u32,
}

impl Default for ClearinghouseScenario {
    fn default() -> Self {
        ClearinghouseScenario {
            sites: 50,
            mail: MailConfig {
                loss_probability: 0.05,
                queue_capacity: 1_000,
            },
            updates: 20,
            anti_entropy_every: 5,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 10_000,
        }
    }
}

/// Outcome of a Clearinghouse workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClearinghouseReport {
    /// First cycle at which every replica was identical (after all updates
    /// were injected); `None` if never within the bound.
    pub consistent_at: Option<u32>,
    /// Mail messages lost or dropped by overflow.
    pub mail_failures: usize,
    /// Mail messages delivered.
    pub mail_delivered: usize,
    /// Entries shipped by anti-entropy (the repairs).
    pub ae_repairs: usize,
}

impl ClearinghouseScenario {
    /// The equivalent declarative spec.
    pub fn to_scenario(&self) -> Scenario {
        let mut spec = Scenario::new("clearinghouse", self.sites);
        spec.protocol.mail = Some(self.mail);
        if self.anti_entropy_every > 0 {
            spec.protocol.anti_entropy = Some(AntiEntropySpec {
                every: self.anti_entropy_every,
                from: 0,
                redistribution: self.redistribution,
            });
        }
        spec.protocol.rumor = self
            .rumor_k
            .map(|k| RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k }));
        spec.workload = update_workload(1.0, self.updates as u64);
        spec.until = StopRule::Converged;
        spec.max_cycles = self.max_cycles;
        spec
    }

    /// Runs the workload to consistency (or the cycle bound).
    pub fn run(&self, seed: u64) -> ClearinghouseReport {
        let report = ScenarioEngine::new(self.to_scenario())
            .expect("clearinghouse spec is valid")
            .run(seed);
        let mail = report.mail.expect("clearinghouse always mails");
        ClearinghouseReport {
            consistent_at: report.converged_at,
            mail_failures: mail.lost + mail.overflowed,
            mail_delivered: mail.delivered,
            ae_repairs: usize::try_from(report.ae_sent).unwrap_or(usize::MAX),
        }
    }
}

/// Demonstrates §2's motivating failure: if a site deletes an item by
/// simply forgetting it (no death certificate), anti-entropy resurrects the
/// item from the other replicas. Returns `true` if the item is back at the
/// deleting site afterwards (it always is).
///
/// This one deliberately stays a hand-written loop: its "deletion" is
/// rebuilding a replica without the item — an operation outside any sane
/// spec vocabulary, which is rather the point of the demonstration.
pub fn resurrection_without_certificates(sites: usize, seed: u64) -> bool {
    assert!(sites >= 3);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut replicas: Vec<Replica<&str, u32>> = (0..sites)
        .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
        .collect();
    let ae = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    replicas[0].client_update("item", 7);
    converge(&mut replicas, &ae, &mut rng);

    // "Delete" at site 0 by rebuilding its replica without the item — the
    // naive removal the paper warns against.
    let fresh = Replica::new(SiteId::new(0));
    replicas[0] = fresh;

    converge(&mut replicas, &ae, &mut rng);
    replicas[0].db().get(&"item") == Some(&7)
}

/// Runs random push-pull anti-entropy rounds until all replicas agree.
fn converge(replicas: &mut [Replica<&'static str, u32>], ae: &AntiEntropy, rng: &mut StdRng) {
    let n = replicas.len();
    let mut scratch = epidemic_core::ExchangeScratch::new();
    for _ in 0..50 * n {
        let (i, j) = random_pair(n, rng);
        let (a, b) = pair_mut(replicas, i, j);
        ae.exchange_with(a, b, &mut scratch);
        let first = &replicas[0];
        if replicas[1..].iter().all(|r| r.db() == first.db()) {
            return;
        }
    }
    panic!("replicas failed to converge within the exchange budget");
}

/// Configuration for the dormant-death-certificate scenario (§2.1–2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DormantDeathScenario {
    /// Number of sites (including the one that goes down).
    pub sites: usize,
    /// Active retention window `τ₁` in ticks.
    pub tau1: u64,
    /// Dormant retention window `τ₂` in ticks.
    pub tau2: u64,
    /// Number of retention sites `r` for the certificate.
    pub retention: usize,
}

impl Default for DormantDeathScenario {
    fn default() -> Self {
        DormantDeathScenario {
            sites: 20,
            tau1: 50,
            tau2: 100_000,
            retention: 2,
        }
    }
}

/// Outcome of the dormant-certificate run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DormantReport {
    /// Dormant certificates awakened during the rejoin.
    pub awakened: usize,
    /// Whether the obsolete item was cancelled everywhere at the end.
    pub obsolete_cancelled: bool,
    /// Sites still holding a (non-dormant) death certificate after GC —
    /// should be 0 once `τ₁` has passed.
    pub certificates_active_after_gc: usize,
}

impl DormantDeathScenario {
    /// The equivalent declarative spec:
    ///
    /// 1. all sites converge on an item (anti-entropy every cycle);
    /// 2. the last site goes down;
    /// 3. the item is deleted with `r` retention sites; the deletion
    ///    propagates and the `gc` event garbage-collects past `τ₁`
    ///    (dormant copies remain only at retention sites);
    /// 4. the down site rejoins with its obsolete copy — a dormant
    ///    certificate must awaken and cancel it everywhere.
    pub fn to_scenario(&self) -> Scenario {
        let mut spec = Scenario::new("dormant-death", self.sites);
        spec.protocol.anti_entropy = Some(AntiEntropySpec {
            every: 1,
            from: 0,
            redistribution: Redistribution::None,
        });
        spec.events = vec![
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Update {
                    site: Some(0),
                    count: 1,
                },
            },
            FaultEvent {
                cycle: 10,
                kind: FaultKind::Crash(SiteSet::Last(1)),
            },
            FaultEvent {
                cycle: 12,
                kind: FaultKind::Delete {
                    site: 0,
                    key: 0,
                    retention: u32::try_from(self.retention).expect("retention fits u32"),
                },
            },
            FaultEvent {
                cycle: 26,
                kind: FaultKind::Gc {
                    tau1: self.tau1,
                    tau2: self.tau2,
                },
            },
            FaultEvent {
                cycle: 28,
                kind: FaultKind::Recover(SiteSet::All),
            },
        ];
        spec.until = StopRule::Cancelled;
        spec.max_cycles = 400;
        spec
    }

    /// Runs the scenario.
    pub fn run(&self, seed: u64) -> DormantReport {
        assert!(self.sites >= 4);
        assert!(self.retention >= 1 && self.retention < self.sites - 1);
        let report = ScenarioEngine::new(self.to_scenario())
            .expect("dormant-death spec is valid")
            .run(seed);
        DormantReport {
            awakened: usize::try_from(report.awakened).unwrap_or(usize::MAX),
            obsolete_cancelled: report.cancelled,
            certificates_active_after_gc: usize::try_from(report.certs_after_gc.unwrap_or(0))
                .unwrap_or(usize::MAX),
        }
    }
}

/// §1.5's partition claim: the peel-back ∪ rumor (activity list) protocol
/// "behaves well when a network partitions and rejoins". Two halves evolve
/// independently while partitioned; after the rejoin the fresh updates are
/// exchanged first and the fleet converges with bounded traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionScenario {
    /// Sites per partition half.
    pub half: usize,
    /// Updates injected in each half while partitioned (the declarative
    /// workload injects `2 ×` this many at uniformly random sites, which
    /// the partition confines to their halves).
    pub updates_per_half: usize,
    /// Batch size for the activity-list exchanges.
    pub batch: usize,
}

impl Default for PartitionScenario {
    fn default() -> Self {
        PartitionScenario {
            half: 8,
            updates_per_half: 12,
            batch: 4,
        }
    }
}

/// Outcome of [`PartitionScenario::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionReport {
    /// Whether all replicas converged after the rejoin.
    pub converged: bool,
    /// Peel-back contacts after the heal (blocked cross-cut attempts
    /// included — they pay a connection like everything else).
    pub exchanges_after_rejoin: usize,
    /// Entries shipped after the heal.
    pub entries_after_rejoin: usize,
}

impl PartitionScenario {
    /// The equivalent declarative spec: partition from cycle 0, a
    /// 2-update-per-cycle workload while split, heal, then run to
    /// convergence.
    pub fn to_scenario(&self) -> Scenario {
        let updates = 2 * self.updates_per_half as u64;
        let heal = u32::try_from(self.updates_per_half + 4).expect("heal cycle fits u32");
        let mut spec = Scenario::new("partition", 2 * self.half);
        spec.protocol.peel_back = Some(self.batch);
        spec.workload = update_workload(2.0, updates);
        spec.events = vec![
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Partition(2),
            },
            FaultEvent {
                cycle: heal,
                kind: FaultKind::Heal,
            },
        ];
        spec.until = StopRule::Converged;
        spec.max_cycles = 500;
        spec
    }

    /// Runs the scenario with the given seed.
    pub fn run(&self, seed: u64) -> PartitionReport {
        assert!(self.half >= 2);
        let report = ScenarioEngine::new(self.to_scenario())
            .expect("partition spec is valid")
            .run(seed);
        let at_heal = report
            .milestone("heal")
            .copied()
            .expect("the heal event always fires");
        PartitionReport {
            converged: report.converged_at.is_some(),
            exchanges_after_rejoin: usize::try_from(report.totals.contacts - at_heal.contacts)
                .unwrap_or(usize::MAX),
            entries_after_rejoin: usize::try_from(report.totals.sent - at_heal.sent)
                .unwrap_or(usize::MAX),
        }
    }
}

/// Failure injection: a fraction of sites is down during the initial rumor
/// spreading and comes back only for the anti-entropy backup phase —
/// combining §1.4's failure mode with §1.5's remedy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashScenario {
    /// Total sites.
    pub sites: usize,
    /// Fraction of sites down during rumor spreading.
    pub down_fraction: f64,
    /// Rumor counter parameter `k`.
    pub k: u32,
}

impl Default for CrashScenario {
    fn default() -> Self {
        CrashScenario {
            sites: 40,
            down_fraction: 0.3,
            k: 2,
        }
    }
}

/// Outcome of [`CrashScenario::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashReport {
    /// Sites missing the update when the crashed sites recovered.
    pub missed_by_rumor: usize,
    /// Whether backup anti-entropy achieved full coverage afterwards.
    pub repaired: bool,
}

impl CrashScenario {
    /// The cycle at which the crashed sites recover and anti-entropy takes
    /// over (generous headroom for the rumor to quiesce first; quiescent
    /// rumor cycles cost nothing).
    const RECOVER_AT: u32 = 100;

    /// The equivalent declarative spec: push rumor with feedback counters
    /// spreads while a site fraction is down, then everyone recovers and
    /// per-cycle anti-entropy repairs to full coverage.
    pub fn to_scenario(&self) -> Scenario {
        let mut spec = Scenario::new("crash", self.sites);
        spec.protocol.rumor = Some(RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: self.k },
        ));
        spec.protocol.anti_entropy = Some(AntiEntropySpec {
            every: 1,
            from: Self::RECOVER_AT,
            redistribution: Redistribution::None,
        });
        spec.events = vec![
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Update {
                    site: Some(0),
                    count: 1,
                },
            },
            FaultEvent {
                cycle: 0,
                kind: FaultKind::Crash(SiteSet::Fraction(self.down_fraction)),
            },
            FaultEvent {
                cycle: Self::RECOVER_AT,
                kind: FaultKind::Recover(SiteSet::All),
            },
        ];
        spec.until = StopRule::Coverage;
        spec.max_cycles = 2_000;
        spec
    }

    /// Runs the scenario with the given seed.
    pub fn run(&self, seed: u64) -> CrashReport {
        assert!(self.sites >= 4);
        let report = ScenarioEngine::new(self.to_scenario())
            .expect("crash spec is valid")
            .run(seed);
        let at_recover = report
            .milestone("recover")
            .copied()
            .expect("the recover event always fires");
        CrashReport {
            missed_by_rumor: self.sites - at_recover.covered,
            repaired: report.residue == 0.0,
        }
    }
}

/// Re-exported for report post-processing (adapters above return it
/// pre-digested; direct [`ScenarioEngine`] users get the full report).
pub use super::engine::ScenarioReport as FullReport;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clearinghouse_reaches_consistency_despite_lossy_mail() {
        let scenario = ClearinghouseScenario {
            sites: 30,
            mail: MailConfig {
                loss_probability: 0.2,
                queue_capacity: 100,
            },
            updates: 10,
            anti_entropy_every: 3,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 2_000,
        };
        let report = scenario.run(11);
        assert!(report.consistent_at.is_some());
        assert!(report.mail_failures > 0, "the mail should actually fail");
        assert!(report.ae_repairs > 0, "anti-entropy should repair losses");
    }

    #[test]
    fn without_anti_entropy_lossy_mail_leaves_holes() {
        let scenario = ClearinghouseScenario {
            sites: 30,
            mail: MailConfig {
                loss_probability: 0.2,
                queue_capacity: 100,
            },
            updates: 10,
            anti_entropy_every: 0, // disabled
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 300,
        };
        let report = scenario.run(11);
        assert_eq!(report.consistent_at, None);
    }

    #[test]
    fn perfect_mail_needs_no_repairs() {
        let scenario = ClearinghouseScenario {
            sites: 20,
            mail: MailConfig::default(),
            updates: 5,
            anti_entropy_every: 4,
            redistribution: Redistribution::None,
            rumor_k: None,
            max_cycles: 500,
        };
        let report = scenario.run(3);
        assert!(report.consistent_at.is_some());
        assert_eq!(report.mail_failures, 0);
    }

    #[test]
    fn naive_deletion_resurrects() {
        assert!(resurrection_without_certificates(10, 5));
    }

    #[test]
    fn dormant_certificates_cancel_rejoining_obsolete_data() {
        let report = DormantDeathScenario::default().run(17);
        assert!(report.awakened >= 1, "a dormant certificate must awaken");
        assert!(report.obsolete_cancelled);
        assert_eq!(
            report.certificates_active_after_gc, 0,
            "no active certificates should remain after tau1"
        );
    }

    #[test]
    fn partition_rejoin_converges_with_bounded_traffic() {
        let report = PartitionScenario::default().run(21);
        assert!(report.converged);
        // Each update must cross to 8 other sites: entries shipped is
        // bounded by a small multiple of updates x sites.
        assert!(report.entries_after_rejoin < 24 * 16 * 4);
    }

    #[test]
    fn partition_rejoin_handles_conflicts() {
        // Concurrent writes race on both sides of the partition:
        // timestamps decide, and both halves agree after rejoin.
        let scenario = PartitionScenario {
            updates_per_half: 6,
            ..PartitionScenario::default()
        };
        for seed in 0..3 {
            assert!(scenario.run(seed).converged);
        }
    }

    #[test]
    fn downed_sites_miss_rumors_but_backup_repairs() {
        let report = CrashScenario::default().run(5);
        assert!(
            report.missed_by_rumor >= 12,
            "the down sites cannot hear the rumor: {report:?}"
        );
        assert!(report.repaired);
    }

    #[test]
    fn crash_free_run_misses_almost_nobody() {
        let report = CrashScenario {
            sites: 40,
            down_fraction: 0.0,
            k: 4,
        }
        .run(6);
        assert!(report.missed_by_rumor <= 2, "{report:?}");
        assert!(report.repaired);
    }
}
