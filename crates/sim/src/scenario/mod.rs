//! Declarative scenarios: fault timelines + weighted workload mixes
//! (paper §1.2, §1.5, §2, §3 — behavior under adversity, as data).
//!
//! The paper's most interesting claims are about what happens when things
//! go wrong: mail that loses letters, sites that crash mid-epidemic,
//! partitions that heal, dormant death certificates racing resurrections.
//! Each such experiment used to be a bespoke driver struct with its own
//! hand-rolled loop; this module replaces them with a single spec type —
//! [`Scenario`]: site count, topology, protocol stack, a weighted
//! update/delete/read workload mix, and a timeline of [`FaultEvent`]s —
//! plus [`ScenarioEngine`], which lowers any spec onto the shared
//! [`CycleEngine`](crate::engine::CycleEngine) and reports through the
//! same [`ContactStats`](crate::engine::ContactStats) plumbing as every
//! other driver.
//!
//! Specs parse from a zero-dependency line-oriented text format
//! ([`Scenario::parse`]) and render back canonically
//! ([`Scenario::render`], with `parse(render(s)) == s`). The bundled
//! `.scenario` files under `crates/sim/scenarios/` ([`bundled`]) cover the
//! four legacy drivers — re-expressed declaratively, with their original
//! public types kept as thin adapters in [`legacy`] — and two genuinely
//! new runs (a flash-crowd burst under lossy links; churn across a
//! partition heal).
//!
//! Determinism: a run is a pure function of `(spec, seed)`. All
//! randomness flows through one seeded [`StdRng`](rand::rngs::StdRng) in
//! a fixed per-cycle order, and trial-level parallelism never splits a
//! run, so artifacts are byte-identical at any `EPIDEMIC_THREADS`.

mod engine;
mod parse;
mod spec;

pub mod bundled;
pub mod legacy;

pub use engine::{Milestone, ScenarioEngine, ScenarioProtocol, ScenarioReport};
pub use parse::ParseError;
pub use spec::{
    AntiEntropySpec, FaultEvent, FaultKind, ProtocolSpec, Scenario, SiteSet, SpatialSpec,
    SpecError, StopRule, TopologySpec, Workload, WorkloadMix,
};
