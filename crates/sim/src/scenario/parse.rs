//! Hand-rolled parser for the `.scenario` text format (the repo has no
//! crates.io access, so this follows the zero-dependency style of
//! `epidemic_trace`'s JSON writer: plain `&str` splitting, explicit
//! errors with line numbers, no parser combinators).
//!
//! The grammar is line-oriented: one directive per line, `#` starts a
//! comment, blank lines are ignored. [`Scenario::render`] emits the
//! canonical form and `parse(render(spec)) == spec` holds for every valid
//! spec (pinned by proptest, including float round-trips via Rust's
//! shortest-representation `Display`).

use super::spec::{
    AntiEntropySpec, FaultEvent, FaultKind, Scenario, SiteSet, SpatialSpec, StopRule, TopologySpec,
    Workload, WorkloadMix,
};
use epidemic_core::rumor::{Feedback, Removal};
use epidemic_core::{Direction, MailConfig, Redistribution, RumorConfig};

/// A syntax or consistency error in `.scenario` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

/// One directive line split into tokens, consumed left to right.
struct Cursor<'a> {
    line: usize,
    tokens: std::str::SplitWhitespace<'a>,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            message: message.into(),
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, ParseError> {
        self.tokens
            .next()
            .ok_or_else(|| self.err(format!("expected {what}")))
    }

    fn peek_done(&mut self) -> Option<&'a str> {
        self.tokens.next()
    }

    fn parse<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, ParseError> {
        let token = self.next(what)?;
        token
            .parse()
            .map_err(|_| self.err(format!("invalid {what}: {token:?}")))
    }

    fn finish(mut self) -> Result<(), ParseError> {
        match self.peek_done() {
            None => Ok(()),
            Some(extra) => Err(self.err(format!("unexpected trailing token {extra:?}"))),
        }
    }
}

impl Scenario {
    /// Parses `.scenario` text. Syntax errors carry the offending line;
    /// the parsed spec is also [validated](Scenario::validate), so a
    /// successfully parsed scenario is always runnable.
    pub fn parse(text: &str) -> Result<Scenario, ParseError> {
        let mut spec = Scenario::new(String::new(), 2);
        let mut saw_name = false;
        let mut saw_sites = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut cur = Cursor {
                line: idx + 1,
                tokens: line.split_whitespace(),
            };
            let directive = cur.next("a directive")?;
            match directive {
                "scenario" => {
                    spec.name = cur.next("a scenario name")?.to_string();
                    saw_name = true;
                }
                "sites" => {
                    spec.sites = cur.parse("site count")?;
                    saw_sites = true;
                }
                "topology" => spec.topology = parse_topology(&mut cur)?,
                "anti-entropy" => spec.protocol.anti_entropy = Some(parse_anti_entropy(&mut cur)?),
                "rumor" => spec.protocol.rumor = Some(parse_rumor(&mut cur)?),
                "peel-back" => spec.protocol.peel_back = Some(cur.parse("peel-back batch")?),
                "mail" => spec.protocol.mail = Some(parse_mail(&mut cur)?),
                "workload" => spec.workload = parse_workload(&mut cur, spec.workload)?,
                "mix" => spec.workload.mix = parse_mix(&mut cur)?,
                "at" => spec.events.push(parse_event(&mut cur)?),
                "until" => spec.until = parse_until(&mut cur)?,
                "max-cycles" => spec.max_cycles = cur.parse("cycle bound")?,
                other => return Err(cur.err(format!("unknown directive {other:?}"))),
            }
            cur.finish()?;
        }
        if !saw_name {
            return Err(whole_file("missing `scenario <name>` directive"));
        }
        if !saw_sites {
            return Err(whole_file("missing `sites <n>` directive"));
        }
        spec.validate().map_err(|e| whole_file(e.message))?;
        Ok(spec)
    }
}

fn whole_file(message: impl Into<String>) -> ParseError {
    ParseError {
        line: 0,
        message: message.into(),
    }
}

fn parse_spatial(cur: &mut Cursor<'_>) -> Result<SpatialSpec, ParseError> {
    match cur.next("a spatial kind (uniform|qspower)")? {
        "uniform" => Ok(SpatialSpec::Uniform),
        "qspower" => Ok(SpatialSpec::QsPower {
            a: cur.parse("qspower exponent")?,
        }),
        other => Err(cur.err(format!("unknown spatial kind {other:?}"))),
    }
}

fn parse_topology(cur: &mut Cursor<'_>) -> Result<TopologySpec, ParseError> {
    match cur.next("a topology kind (uniform|grid|ring)")? {
        "uniform" => Ok(TopologySpec::Uniform),
        "grid" => Ok(TopologySpec::Grid {
            rows: cur.parse("grid rows")?,
            cols: cur.parse("grid cols")?,
            spatial: parse_spatial(cur)?,
        }),
        "ring" => Ok(TopologySpec::Ring {
            spatial: parse_spatial(cur)?,
        }),
        other => Err(cur.err(format!("unknown topology {other:?}"))),
    }
}

fn parse_anti_entropy(cur: &mut Cursor<'_>) -> Result<AntiEntropySpec, ParseError> {
    expect_word(cur, "every")?;
    let every = cur.parse("anti-entropy period")?;
    expect_word(cur, "from")?;
    let from = cur.parse("anti-entropy start cycle")?;
    expect_word(cur, "redistribute")?;
    let redistribution = match cur.next("a redistribution (none|rumor|mail)")? {
        "none" => Redistribution::None,
        "rumor" => Redistribution::Rumor,
        "mail" => Redistribution::Mail,
        other => return Err(cur.err(format!("unknown redistribution {other:?}"))),
    };
    Ok(AntiEntropySpec {
        every,
        from,
        redistribution,
    })
}

fn parse_rumor(cur: &mut Cursor<'_>) -> Result<RumorConfig, ParseError> {
    let direction = match cur.next("a direction (push|pull|push-pull)")? {
        "push" => Direction::Push,
        "pull" => Direction::Pull,
        "push-pull" => Direction::PushPull,
        other => return Err(cur.err(format!("unknown direction {other:?}"))),
    };
    let feedback = match cur.next("feedback|blind")? {
        "feedback" => Feedback::Feedback,
        "blind" => Feedback::Blind,
        other => return Err(cur.err(format!("unknown feedback mode {other:?}"))),
    };
    let removal_kind = cur.next("counter|coin")?.to_string();
    let k = cur.parse("removal threshold k")?;
    let removal = match removal_kind.as_str() {
        "counter" => Removal::Counter { k },
        "coin" => Removal::Coin { k },
        other => return Err(cur.err(format!("unknown removal rule {other:?}"))),
    };
    // The flags encode the booleans by *presence*, overriding the
    // direction-dependent defaults of `RumorConfig::new`, so every flag
    // combination round-trips through render.
    let mut cfg = RumorConfig {
        direction,
        feedback,
        removal,
        reset_on_useful: false,
        minimization: false,
    };
    while let Some(flag) = cur.peek_done() {
        match flag {
            "reset" => cfg.reset_on_useful = true,
            "minimize" => cfg.minimization = true,
            other => return Err(cur.err(format!("unknown rumor flag {other:?}"))),
        }
    }
    Ok(cfg)
}

fn parse_mail(cur: &mut Cursor<'_>) -> Result<MailConfig, ParseError> {
    expect_word(cur, "loss")?;
    let loss_probability = cur.parse("mail loss probability")?;
    expect_word(cur, "capacity")?;
    let queue_capacity = cur.parse("mail queue capacity")?;
    Ok(MailConfig {
        loss_probability,
        queue_capacity,
    })
}

fn parse_workload(cur: &mut Cursor<'_>, base: Workload) -> Result<Workload, ParseError> {
    expect_word(cur, "rate")?;
    let mut workload = Workload {
        rate: cur.parse("workload rate")?,
        ..base
    };
    while let Some(field) = cur.peek_done() {
        match field {
            "budget" => workload.budget = Some(cur.parse("workload budget")?),
            "retention" => workload.retention = cur.parse("workload retention")?,
            other => return Err(cur.err(format!("unknown workload field {other:?}"))),
        }
    }
    Ok(workload)
}

fn parse_mix(cur: &mut Cursor<'_>) -> Result<WorkloadMix, ParseError> {
    expect_word(cur, "update")?;
    let update = cur.parse("update weight")?;
    expect_word(cur, "delete")?;
    let delete = cur.parse("delete weight")?;
    expect_word(cur, "read")?;
    let read = cur.parse("read weight")?;
    Ok(WorkloadMix {
        update,
        delete,
        read,
    })
}

fn parse_site_set(cur: &mut Cursor<'_>) -> Result<SiteSet, ParseError> {
    match cur.next("a site set (site|span|last|fraction|all)")? {
        "site" => Ok(SiteSet::Site(cur.parse("site index")?)),
        "span" => Ok(SiteSet::Span {
            from: cur.parse("span start")?,
            count: cur.parse("span count")?,
        }),
        "last" => Ok(SiteSet::Last(cur.parse("last count")?)),
        "fraction" => Ok(SiteSet::Fraction(cur.parse("fraction")?)),
        "all" => Ok(SiteSet::All),
        other => Err(cur.err(format!("unknown site set {other:?}"))),
    }
}

fn parse_event(cur: &mut Cursor<'_>) -> Result<FaultEvent, ParseError> {
    let cycle = cur.parse("event cycle")?;
    let kind = match cur.next("an event kind")? {
        "update" => {
            let mut site = None;
            let mut count = 1;
            while let Some(field) = cur.peek_done() {
                match field {
                    "site" => site = Some(cur.parse("update site")?),
                    "count" => count = cur.parse("update count")?,
                    other => return Err(cur.err(format!("unknown update field {other:?}"))),
                }
            }
            FaultKind::Update { site, count }
        }
        "delete" => {
            expect_word(cur, "site")?;
            let site = cur.parse("delete site")?;
            expect_word(cur, "key")?;
            let key = cur.parse("delete key")?;
            expect_word(cur, "retention")?;
            let retention = cur.parse("delete retention")?;
            FaultKind::Delete {
                site,
                key,
                retention,
            }
        }
        "crash" => FaultKind::Crash(parse_site_set(cur)?),
        "recover" => FaultKind::Recover(parse_site_set(cur)?),
        "churn" => FaultKind::Churn {
            fail: cur.parse("churn fail probability")?,
            recover: cur.parse("churn recover probability")?,
        },
        "churn-stop" => FaultKind::ChurnStop,
        "partition" => FaultKind::Partition(cur.parse("partition groups")?),
        "heal" => FaultKind::Heal,
        "loss" => FaultKind::Loss(cur.parse("loss probability")?),
        "loss-end" => FaultKind::LossEnd,
        "gc" => FaultKind::Gc {
            tau1: cur.parse("gc tau1")?,
            tau2: cur.parse("gc tau2")?,
        },
        "skew" => {
            expect_word(cur, "site")?;
            let site = cur.parse("skew site")?;
            expect_word(cur, "offset")?;
            let offset = cur.parse("skew offset")?;
            FaultKind::Skew { site, offset }
        }
        other => return Err(cur.err(format!("unknown event kind {other:?}"))),
    };
    Ok(FaultEvent { cycle, kind })
}

fn parse_until(cur: &mut Cursor<'_>) -> Result<StopRule, ParseError> {
    match cur.next("a stop rule")? {
        "converged" => Ok(StopRule::Converged),
        "coverage" => Ok(StopRule::Coverage),
        "quiescent" => Ok(StopRule::Quiescent),
        "cancelled" => Ok(StopRule::Cancelled),
        "bound" => Ok(StopRule::Bound),
        other => Err(cur.err(format!("unknown stop rule {other:?}"))),
    }
}

fn expect_word(cur: &mut Cursor<'_>, word: &str) -> Result<(), ParseError> {
    let token = cur.next(&format!("`{word}`"))?;
    if token == word {
        Ok(())
    } else {
        Err(cur.err(format!("expected `{word}`, found {token:?}")))
    }
}
