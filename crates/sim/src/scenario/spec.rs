//! The declarative scenario specification: what to simulate, which
//! faults to inject when, and what workload to apply.
//!
//! A [`Scenario`] is pure data — site count, topology, protocol
//! composition, a weighted workload mix and a timeline of
//! [`FaultEvent`]s — and the simulated outcome is a pure function of
//! `(spec, seed)`. Specs render to a line-oriented text format
//! ([`Scenario::render`]) and parse back ([`Scenario::parse`]); the
//! grammar is documented in DESIGN.md §Scenario subsystem and
//! round-tripping (`parse(render(spec)) == spec`) is pinned by proptest.

use epidemic_core::{MailConfig, Redistribution, RumorConfig};

/// Partner-distance bias for spatial topologies, mirroring
/// [`epidemic_net::Spatial`] (which is not `PartialEq`-comparable across
/// the net crate's cache state, hence this plain mirror type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialSpec {
    /// Uniform partner selection over the topology's sites.
    Uniform,
    /// Distance-biased selection `Q(s) ∝ 1/d^a` (§3's `QsPower`).
    QsPower {
        /// The distance exponent `a`.
        a: f64,
    },
}

impl SpatialSpec {
    /// The equivalent [`epidemic_net::Spatial`] selection.
    pub fn to_net(self) -> epidemic_net::Spatial {
        match self {
            SpatialSpec::Uniform => epidemic_net::Spatial::Uniform,
            SpatialSpec::QsPower { a } => epidemic_net::Spatial::QsPower { a },
        }
    }
}

/// Where the sites live and how partners are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// Complete mixing: any site may contact any other uniformly.
    Uniform,
    /// A `rows × cols` grid (`rows * cols` must equal the site count).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
        /// Partner-distance bias.
        spatial: SpatialSpec,
    },
    /// A ring of `sites` sites.
    Ring {
        /// Partner-distance bias.
        spatial: SpatialSpec,
    },
}

/// Periodic anti-entropy backup configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntiEntropySpec {
    /// Run anti-entropy on cycles divisible by `every` (1 = every cycle).
    pub every: u32,
    /// First cycle at which anti-entropy may run (0 = from the start) —
    /// §1.5's "backup arrives later" staging.
    pub from: u32,
    /// What to do with rediscovered updates (§1.5).
    pub redistribution: Redistribution,
}

/// The protocol composition a scenario runs: any subset of periodic
/// anti-entropy, rumor mongering, peel-back (activity-list) exchanges and
/// an unreliable direct-mail transport for initial distribution.
///
/// Per cycle at most one contact mechanism runs: anti-entropy on its
/// scheduled cycles, otherwise rumor mongering (if configured), otherwise
/// peel-back (if configured). Mail delivery happens at the start of every
/// cycle regardless. `rumor` and `peel_back` are mutually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProtocolSpec {
    /// Periodic push-pull full-database anti-entropy.
    pub anti_entropy: Option<AntiEntropySpec>,
    /// Per-cycle rumor mongering for hot updates.
    pub rumor: Option<RumorConfig>,
    /// Peel-back rumor with activity lists (§1.5's partition-friendly
    /// variant); the value is the batch size.
    pub peel_back: Option<usize>,
    /// Unreliable direct mail: injected updates are broadcast to every
    /// site, queued letters are delivered (to up sites) each cycle.
    pub mail: Option<MailConfig>,
}

/// Relative weights of the client operations in the workload mix.
/// Probabilities are `weight / sum(weights)` — weights need not sum to
/// any particular total (the rust_loadtest MULTI_SCENARIO convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadMix {
    /// Weight of `update` operations (new key, random site).
    pub update: u32,
    /// Weight of `delete` operations (random live key, death certificate
    /// with retention sites).
    pub delete: u32,
    /// Weight of `read` operations (random key, random site; misses are
    /// counted).
    pub read: u32,
}

impl WorkloadMix {
    /// Total weight (the probability denominator).
    pub fn total(&self) -> u32 {
        self.update + self.delete + self.read
    }
}

/// Continuous client workload: `rate` operations per cycle on average
/// (fractional rates carry over), drawn from the weighted mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Mean operations injected per cycle (0 disables the workload).
    pub rate: f64,
    /// Total operation budget (`None` = unlimited: the run then ends only
    /// at the cycle bound).
    pub budget: Option<u64>,
    /// Retention sites attached to each workload delete's certificate.
    pub retention: u32,
    /// The weighted operation mix.
    pub mix: WorkloadMix,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            rate: 0.0,
            budget: None,
            retention: 1,
            mix: WorkloadMix {
                update: 1,
                delete: 0,
                read: 0,
            },
        }
    }
}

/// A deterministic selection of sites for crash/recover events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SiteSet {
    /// One site by dense index.
    Site(usize),
    /// `count` consecutive sites starting at `from`.
    Span {
        /// First site index.
        from: usize,
        /// Number of sites.
        count: usize,
    },
    /// The last `count` sites.
    Last(usize),
    /// Sites `1..=floor(n * fraction)` — never site 0, which scenarios
    /// conventionally use as the injection origin.
    Fraction(f64),
    /// Every site.
    All,
}

/// One scheduled fault or injection on the scenario timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The cycle at whose start the event fires (0 = before the run).
    pub cycle: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// The fault/injection vocabulary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Inject `count` client updates (a flash crowd when `count > 1`) at
    /// an explicit site, or at uniformly random sites when `site` is
    /// `None`. Keys are allocated sequentially from the shared injector.
    Update {
        /// Explicit site, or `None` for a random site per update.
        site: Option<usize>,
        /// Number of updates injected this cycle.
        count: u32,
    },
    /// Delete `key` at `site` with a death certificate carrying
    /// `retention` retention sites (the sites after `site` in index
    /// order).
    Delete {
        /// Deleting site.
        site: usize,
        /// Key to delete.
        key: u32,
        /// Number of retention sites (§2.3).
        retention: u32,
    },
    /// Take sites down (state intact; they neither initiate nor admit).
    Crash(SiteSet),
    /// Bring sites back up.
    Recover(SiteSet),
    /// Start per-cycle up/down churn with the given transition
    /// probabilities (the §2 hours-to-days downtime model).
    Churn {
        /// P(up site goes down) per cycle.
        fail: f64,
        /// P(down site comes back) per cycle.
        recover: f64,
    },
    /// Stop churn (sites keep their current up/down state).
    ChurnStop,
    /// Split the sites into `groups` contiguous equal partitions; contacts
    /// across a cut fail (after paying their partner draw).
    Partition(usize),
    /// Remove the partition.
    Heal,
    /// Drop each contact with the given probability (lossy links; the
    /// failed contact still pays its partner draw and one loss draw).
    Loss(f64),
    /// Remove link loss.
    LossEnd,
    /// Advance every up site's clock past `τ₁` and garbage-collect death
    /// certificates with the dormant policy (§2.1).
    Gc {
        /// Active retention window `τ₁` in ticks.
        tau1: u64,
        /// Dormant retention window `τ₂` in ticks.
        tau2: u64,
    },
    /// Run `site`'s clock `offset` ticks ahead of the cycle counter.
    Skew {
        /// The skewed site.
        site: usize,
        /// Clock offset in ticks.
        offset: u64,
    },
}

impl FaultKind {
    /// A stable label for milestones and reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Update { .. } => "update",
            FaultKind::Delete { .. } => "delete",
            FaultKind::Crash(_) => "crash",
            FaultKind::Recover(_) => "recover",
            FaultKind::Churn { .. } => "churn",
            FaultKind::ChurnStop => "churn-stop",
            FaultKind::Partition(_) => "partition",
            FaultKind::Heal => "heal",
            FaultKind::Loss(_) => "loss",
            FaultKind::LossEnd => "loss-end",
            FaultKind::Gc { .. } => "gc",
            FaultKind::Skew { .. } => "skew",
        }
    }
}

/// When a scenario run stops (always bounded by
/// [`Scenario::max_cycles`]; every rule additionally waits until the
/// event timeline is exhausted and the workload budget is spent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRule {
    /// Every injected live key reached every site and all databases are
    /// identical.
    Converged,
    /// Every injected live key reached every site.
    Coverage,
    /// No site holds a hot rumor.
    Quiescent,
    /// Every deleted key's live copy is gone from every site.
    Cancelled,
    /// Run to the cycle bound.
    Bound,
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used for report labels and artifact files).
    pub name: String,
    /// Number of sites.
    pub sites: usize,
    /// Topology and partner selection.
    pub topology: TopologySpec,
    /// Protocol composition.
    pub protocol: ProtocolSpec,
    /// Continuous weighted workload.
    pub workload: Workload,
    /// Fault/injection timeline (kept in listed order; events fire at the
    /// start of their cycle, cycle-0 events before the run).
    pub events: Vec<FaultEvent>,
    /// Stop rule.
    pub until: StopRule,
    /// Safety bound on simulated cycles.
    pub max_cycles: u32,
}

/// A spec-validation failure (see [`Scenario::validate`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description of the inconsistency.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid scenario: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>) -> SpecError {
    SpecError {
        message: message.into(),
    }
}

fn check_prob(value: f64, what: &str) -> Result<(), SpecError> {
    if (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(err(format!("{what} must be a probability in [0, 1]")))
    }
}

impl Scenario {
    /// A minimal scenario skeleton: `sites` sites under complete mixing,
    /// no protocol, no workload, no events, run to the cycle bound.
    pub fn new(name: impl Into<String>, sites: usize) -> Self {
        Scenario {
            name: name.into(),
            sites,
            topology: TopologySpec::Uniform,
            protocol: ProtocolSpec::default(),
            workload: Workload::default(),
            events: Vec::new(),
            until: StopRule::Bound,
            max_cycles: 1_000,
        }
    }

    /// Checks internal consistency; [`super::ScenarioEngine::new`] calls
    /// this, so an engine can only be built around a coherent spec.
    pub fn validate(&self) -> Result<(), SpecError> {
        let n = self.sites;
        if n < 2 {
            return Err(err("sites must be at least 2"));
        }
        if self.name.is_empty() || !self.name.bytes().all(|b| b.is_ascii_graphic()) {
            return Err(err("name must be non-empty printable ASCII without spaces"));
        }
        if let TopologySpec::Grid { rows, cols, .. } = self.topology {
            if rows * cols != n {
                return Err(err(format!("grid {rows}x{cols} does not cover {n} sites")));
            }
        }
        if self.protocol.rumor.is_some() && self.protocol.peel_back.is_some() {
            return Err(err("rumor and peel-back are mutually exclusive"));
        }
        if self.protocol.peel_back == Some(0) {
            return Err(err("peel-back batch must be positive"));
        }
        if let Some(ae) = &self.protocol.anti_entropy {
            if ae.every == 0 {
                return Err(err(
                    "anti-entropy every must be positive (omit the line instead)",
                ));
            }
            if ae.redistribution == Redistribution::Mail && self.protocol.mail.is_none() {
                return Err(err("redistribute mail requires a mail transport"));
            }
        }
        if let Some(mail) = &self.protocol.mail {
            check_prob(mail.loss_probability, "mail loss")?;
        }
        if self.workload.rate < 0.0 || !self.workload.rate.is_finite() {
            return Err(err("workload rate must be finite and non-negative"));
        }
        if self.workload.rate > 0.0 && self.workload.mix.total() == 0 {
            return Err(err("a positive workload rate needs a non-empty mix"));
        }
        if self.workload.retention as usize >= n {
            return Err(err("workload retention must be below the site count"));
        }
        if self.until == StopRule::Quiescent && self.protocol.rumor.is_none() {
            return Err(err("until quiescent requires a rumor protocol"));
        }
        if self.until == StopRule::Cancelled
            && self.workload.mix.delete == 0
            && !self
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Delete { .. }))
        {
            return Err(err("until cancelled requires a delete somewhere"));
        }
        for event in &self.events {
            self.validate_event(event)?;
        }
        Ok(())
    }

    fn validate_event(&self, event: &FaultEvent) -> Result<(), SpecError> {
        let n = self.sites;
        let site_ok = |site: usize, what: &str| {
            if site < n {
                Ok(())
            } else {
                Err(err(format!("{what} site {site} out of range (n = {n})")))
            }
        };
        match &event.kind {
            FaultKind::Update { site, count } => {
                if *count == 0 {
                    return Err(err("update count must be positive"));
                }
                if let Some(site) = site {
                    site_ok(*site, "update")?;
                }
            }
            FaultKind::Delete {
                site, retention, ..
            } => {
                site_ok(*site, "delete")?;
                if *retention as usize >= n {
                    return Err(err("delete retention must be below the site count"));
                }
            }
            FaultKind::Crash(set) | FaultKind::Recover(set) => match set {
                SiteSet::Site(i) => site_ok(*i, "crash/recover")?,
                SiteSet::Span { from, count } => {
                    if from + count > n {
                        return Err(err("crash/recover span out of range"));
                    }
                }
                SiteSet::Last(count) => {
                    if *count > n {
                        return Err(err("crash/recover last out of range"));
                    }
                }
                SiteSet::Fraction(f) => check_prob(*f, "crash/recover fraction")?,
                SiteSet::All => {}
            },
            FaultKind::Churn { fail, recover } => {
                check_prob(*fail, "churn fail")?;
                check_prob(*recover, "churn recover")?;
            }
            FaultKind::Partition(groups) => {
                if *groups < 2 || *groups > n {
                    return Err(err("partition groups must be in 2..=sites"));
                }
            }
            FaultKind::Loss(p) => check_prob(*p, "loss")?,
            FaultKind::Skew { site, .. } => site_ok(*site, "skew")?,
            FaultKind::ChurnStop | FaultKind::Heal | FaultKind::LossEnd | FaultKind::Gc { .. } => {}
        }
        Ok(())
    }

    /// Renders the spec in the `.scenario` text format. The output parses
    /// back to an equal spec ([`Scenario::parse`]); bundled scenario files
    /// are exactly this rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario {}", self.name);
        let _ = writeln!(out, "sites {}", self.sites);
        match self.topology {
            TopologySpec::Uniform => out.push_str("topology uniform\n"),
            TopologySpec::Grid {
                rows,
                cols,
                spatial,
            } => {
                let _ = writeln!(
                    out,
                    "topology grid {rows} {cols} {}",
                    render_spatial(spatial)
                );
            }
            TopologySpec::Ring { spatial } => {
                let _ = writeln!(out, "topology ring {}", render_spatial(spatial));
            }
        }
        if let Some(ae) = &self.protocol.anti_entropy {
            let redistribute = match ae.redistribution {
                Redistribution::None => "none",
                Redistribution::Rumor => "rumor",
                Redistribution::Mail => "mail",
            };
            let _ = writeln!(
                out,
                "anti-entropy every {} from {} redistribute {redistribute}",
                ae.every, ae.from
            );
        }
        if let Some(rumor) = &self.protocol.rumor {
            out.push_str(&render_rumor(rumor));
        }
        if let Some(batch) = self.protocol.peel_back {
            let _ = writeln!(out, "peel-back {batch}");
        }
        if let Some(mail) = &self.protocol.mail {
            let _ = writeln!(
                out,
                "mail loss {} capacity {}",
                mail.loss_probability, mail.queue_capacity
            );
        }
        let w = &self.workload;
        let _ = write!(out, "workload rate {}", w.rate);
        if let Some(budget) = w.budget {
            let _ = write!(out, " budget {budget}");
        }
        let _ = writeln!(out, " retention {}", w.retention);
        let _ = writeln!(
            out,
            "mix update {} delete {} read {}",
            w.mix.update, w.mix.delete, w.mix.read
        );
        for event in &self.events {
            out.push_str(&render_event(event));
        }
        let until = match self.until {
            StopRule::Converged => "converged",
            StopRule::Coverage => "coverage",
            StopRule::Quiescent => "quiescent",
            StopRule::Cancelled => "cancelled",
            StopRule::Bound => "bound",
        };
        let _ = writeln!(out, "until {until}");
        let _ = writeln!(out, "max-cycles {}", self.max_cycles);
        out
    }
}

fn render_spatial(spatial: SpatialSpec) -> String {
    match spatial {
        SpatialSpec::Uniform => "uniform".to_string(),
        SpatialSpec::QsPower { a } => format!("qspower {a}"),
    }
}

fn render_rumor(cfg: &RumorConfig) -> String {
    use epidemic_core::rumor::{Feedback, Removal};
    use epidemic_core::Direction;
    let direction = match cfg.direction {
        Direction::Push => "push",
        Direction::Pull => "pull",
        Direction::PushPull => "push-pull",
    };
    let feedback = match cfg.feedback {
        Feedback::Feedback => "feedback",
        Feedback::Blind => "blind",
    };
    let (removal, k) = match cfg.removal {
        Removal::Counter { k } => ("counter", k),
        Removal::Coin { k } => ("coin", k),
    };
    let mut line = format!("rumor {direction} {feedback} {removal} {k}");
    if cfg.reset_on_useful {
        line.push_str(" reset");
    }
    if cfg.minimization {
        line.push_str(" minimize");
    }
    line.push('\n');
    line
}

fn render_site_set(set: &SiteSet) -> String {
    match set {
        SiteSet::Site(i) => format!("site {i}"),
        SiteSet::Span { from, count } => format!("span {from} {count}"),
        SiteSet::Last(count) => format!("last {count}"),
        SiteSet::Fraction(f) => format!("fraction {f}"),
        SiteSet::All => "all".to_string(),
    }
}

fn render_event(event: &FaultEvent) -> String {
    let cycle = event.cycle;
    let body = match &event.kind {
        FaultKind::Update { site, count } => match site {
            Some(site) => format!("update site {site} count {count}"),
            None => format!("update count {count}"),
        },
        FaultKind::Delete {
            site,
            key,
            retention,
        } => format!("delete site {site} key {key} retention {retention}"),
        FaultKind::Crash(set) => format!("crash {}", render_site_set(set)),
        FaultKind::Recover(set) => format!("recover {}", render_site_set(set)),
        FaultKind::Churn { fail, recover } => format!("churn {fail} {recover}"),
        FaultKind::ChurnStop => "churn-stop".to_string(),
        FaultKind::Partition(groups) => format!("partition {groups}"),
        FaultKind::Heal => "heal".to_string(),
        FaultKind::Loss(p) => format!("loss {p}"),
        FaultKind::LossEnd => "loss-end".to_string(),
        FaultKind::Gc { tau1, tau2 } => format!("gc {tau1} {tau2}"),
        FaultKind::Skew { site, offset } => format!("skew site {site} offset {offset}"),
    };
    format!("at {cycle} {body}\n")
}
