//! Anti-entropy with spatial partner selection on a topology
//! (paper §3.1, Tables 4 and 5).
//!
//! Each cycle, every database site initiates one anti-entropy conversation
//! with a partner drawn from a [`Spatial`] distribution. Conversations are
//! charged to every link on the shortest route between the participants:
//! *compare traffic* counts conversations per link per cycle, *update
//! traffic* counts the conversations in which the update actually had to be
//! sent. Connection limits follow Table 5's pessimistic model: a site can
//! *accept* at most `C` inbound conversations per cycle (its own outgoing
//! conversation is not charged against it, matching the paper's 0.63
//! success fraction at limit 1); rejected initiators may hunt.

use epidemic_core::{AntiEntropy, Comparison, Direction, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, PartnerSampler, PartnerSelection, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;

use crate::util::pair_mut;

/// Result of one spatial anti-entropy run (one update, one topology).
#[derive(Debug, Clone)]
pub struct SpatialRunResult {
    /// Cycles until the last site received the update.
    pub t_last: u32,
    /// Mean cycles from injection to receipt over all sites.
    pub t_ave: f64,
    /// Conversations charged per link, accumulated over `t_last` cycles.
    pub compare_traffic: LinkTraffic,
    /// Update-bearing conversations charged per link, accumulated over the
    /// whole run.
    pub update_traffic: LinkTraffic,
    /// Cycles simulated (equals `t_last`: the run stops at convergence).
    pub cycles: u32,
}

impl SpatialRunResult {
    /// Mean compare conversations per link *per cycle*.
    pub fn compare_per_link_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.compare_traffic.mean_per_link() / f64::from(self.cycles)
    }

    /// Mean update transmissions per link over the run.
    pub fn update_per_link(&self) -> f64 {
        self.update_traffic.mean_per_link()
    }
}

/// Driver for the Table 4/5 experiments.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::spatial_ae::AntiEntropySim;
///
/// let topo = topologies::ring(24);
/// let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 });
/// let result = sim.run(7, None);
/// assert!(result.t_last > 0);
/// ```
#[derive(Debug)]
pub struct AntiEntropySim<'a, S = PartnerSampler> {
    topology: &'a Topology,
    routes: Routes,
    sampler: S,
    connection_limit: Option<u32>,
    hunt_limit: u32,
    max_cycles: u32,
}

/// The single key the spreading update uses.
const KEY: u32 = 0;

impl<'a> AntiEntropySim<'a, PartnerSampler> {
    /// Builds a simulator for `topology` under the given spatial
    /// distribution. Routing tables and sampling tables are precomputed
    /// once; reuse the simulator across runs.
    pub fn new(topology: &'a Topology, spatial: Spatial) -> Self {
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        Self::with_selection(topology, sampler)
    }
}

impl<'a, S: PartnerSelection> AntiEntropySim<'a, S> {
    /// Builds a simulator with an arbitrary [`PartnerSelection`] strategy —
    /// e.g. the §4 [`HierarchicalSampler`](epidemic_net::HierarchicalSampler).
    pub fn with_selection(topology: &'a Topology, sampler: S) -> Self {
        let routes = Routes::compute(topology);
        AntiEntropySim {
            topology,
            routes,
            sampler,
            connection_limit: None,
            hunt_limit: 0,
            max_cycles: 10_000,
        }
    }

    /// Limits conversations per site per cycle (Table 5 uses `Some(1)`).
    pub fn connection_limit(mut self, limit: Option<u32>) -> Self {
        self.connection_limit = limit;
        self
    }

    /// Alternate partners a rejected initiator may try.
    pub fn hunt_limit(mut self, hunt: u32) -> Self {
        self.hunt_limit = hunt;
        self
    }

    /// Shortest-path routing tables (exposed for analysis).
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// Runs one experiment: a single update injected at `origin` (or at a
    /// random site when `None`), push-pull full-database anti-entropy each
    /// cycle, simulated until every site holds the update.
    pub fn run(&self, seed: u64, origin: Option<SiteId>) -> SpatialRunResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        // Map node id -> dense replica index.
        let index_of = |site: SiteId| sites.binary_search(&site).expect("site exists");
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut rng).expect("sites"));
        let origin_idx = index_of(origin);
        replicas[origin_idx].client_update(KEY, 1);
        replicas[origin_idx].hot_mut().clear(); // pure anti-entropy: nothing is "hot"
        let mut receive_cycle: Vec<Option<u32>> = vec![None; n];
        receive_cycle[origin_idx] = Some(0);

        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let mut compare_traffic = LinkTraffic::new(self.topology.link_count());
        let mut update_traffic = LinkTraffic::new(self.topology.link_count());
        let mut cycle = 0;
        let mut order: Vec<usize> = (0..n).collect();

        while cycle < self.max_cycles {
            if receive_cycle.iter().all(Option::is_some) {
                break;
            }
            cycle += 1;
            let mut engaged = vec![0u32; n];
            order.shuffle(&mut rng);
            for idx in order.iter().copied() {
                let Some(pidx) = self.find_partner(idx, sites, &engaged, &mut rng, &index_of)
                else {
                    continue;
                };
                engaged[pidx] += 1;
                let (a, b) = pair_mut(&mut replicas, idx, pidx);
                let stats = protocol.exchange(a, b);
                compare_traffic.record_route(&self.routes, sites[idx], sites[pidx]);
                if stats.update_flowed() {
                    update_traffic.record_route(&self.routes, sites[idx], sites[pidx]);
                    for i in [idx, pidx] {
                        if receive_cycle[i].is_none() && replicas[i].db().entry(&KEY).is_some() {
                            receive_cycle[i] = Some(cycle);
                        }
                    }
                }
            }
        }

        let t_last = receive_cycle.iter().flatten().copied().max().unwrap_or(0);
        let t_ave = receive_cycle
            .iter()
            .map(|c| f64::from(c.unwrap_or(cycle)))
            .sum::<f64>()
            / n as f64;
        SpatialRunResult {
            t_last,
            t_ave,
            compare_traffic,
            update_traffic,
            cycles: cycle,
        }
    }

    /// Runs `trials` experiments in parallel with seeds
    /// `seed_base + trial`, returning results in trial order — identical
    /// to a sequential loop over [`AntiEntropySim::run`] at any thread
    /// count.
    pub fn run_trials(
        &self,
        runner: crate::runner::TrialRunner,
        trials: u64,
        seed_base: u64,
        origin: Option<SiteId>,
    ) -> Vec<SpatialRunResult>
    where
        S: Sync,
    {
        runner.run(trials, seed_base, |seed| self.run(seed, origin))
    }

    /// Samples a partner for site index `idx`, honoring the connection
    /// limit with hunting.
    fn find_partner(
        &self,
        idx: usize,
        sites: &[SiteId],
        engaged: &[u32],
        rng: &mut StdRng,
        index_of: &impl Fn(SiteId) -> usize,
    ) -> Option<usize> {
        for _ in 0..=self.hunt_limit {
            let partner = self.sampler.select(sites[idx], rng);
            let pidx = index_of(partner);
            match self.connection_limit {
                Some(limit) if engaged[pidx] >= limit => continue,
                _ => return Some(pidx),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_net::topologies;

    #[test]
    fn converges_on_a_ring() {
        let topo = topologies::ring(20);
        let sim = AntiEntropySim::new(&topo, Spatial::Uniform);
        let r = sim.run(1, Some(topo.sites()[0]));
        assert!(r.t_last > 0);
        assert!(r.t_ave <= f64::from(r.t_last));
        assert_eq!(r.cycles, r.t_last, "run stops exactly at convergence");
        assert!(r.update_traffic.total() > 0);
    }

    #[test]
    fn spatial_distribution_cuts_far_link_traffic() {
        // On a line, the end-to-end links carry far less traffic under
        // Qs^-2 than under uniform selection.
        let topo = topologies::line(30);
        let uniform = AntiEntropySim::new(&topo, Spatial::Uniform);
        let local = AntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 });
        let mut uniform_mid = 0.0;
        let mut local_mid = 0.0;
        let mid_link = topo
            .link_between(topo.sites()[14], topo.sites()[15])
            .unwrap();
        for seed in 0..10 {
            let ru = uniform.run(seed, Some(topo.sites()[0]));
            let rl = local.run(seed, Some(topo.sites()[0]));
            uniform_mid += ru.compare_traffic.at(mid_link) as f64 / f64::from(ru.cycles);
            local_mid += rl.compare_traffic.at(mid_link) as f64 / f64::from(rl.cycles);
        }
        assert!(
            local_mid < uniform_mid / 2.0,
            "local {local_mid} vs uniform {uniform_mid}"
        );
    }

    #[test]
    fn connection_limit_slows_but_still_converges() {
        let topo = topologies::grid(&[5, 5]);
        let unlimited = AntiEntropySim::new(&topo, Spatial::Uniform);
        let limited = AntiEntropySim::new(&topo, Spatial::Uniform).connection_limit(Some(1));
        let mut t_unlimited = 0.0;
        let mut t_limited = 0.0;
        for seed in 0..10 {
            t_unlimited += f64::from(unlimited.run(seed, Some(topo.sites()[0])).t_last);
            t_limited += f64::from(limited.run(seed, Some(topo.sites()[0])).t_last);
        }
        assert!(t_limited > t_unlimited, "{t_limited} vs {t_unlimited}");
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = topologies::ring(16);
        let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 1.4 });
        let a = sim.run(5, None);
        let b = sim.run(5, None);
        assert_eq!(a.t_last, b.t_last);
        assert_eq!(a.compare_traffic, b.compare_traffic);
    }
}
