//! Anti-entropy with spatial partner selection on a topology
//! (paper §3.1, Tables 4 and 5).
//!
//! Each cycle, every database site initiates one anti-entropy conversation
//! with a partner drawn from a [`Spatial`] distribution. Conversations are
//! charged to every link on the shortest route between the participants:
//! *compare traffic* counts conversations per link per cycle, *update
//! traffic* counts the conversations in which the update actually had to be
//! sent. Connection limits follow Table 5's pessimistic model: a site can
//! *accept* at most `C` inbound conversations per cycle (its own outgoing
//! conversation is not charged against it, matching the paper's 0.63
//! success fraction at limit 1); rejected initiators may hunt. Limits and
//! hunting are the shared [`CycleEngine`]'s, applied to a
//! [`SpatialPartners`] policy.

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, PartnerSampler, PartnerSelection, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::engine::{
    ContactPair, ContactStats, CycleEngine, EpidemicProtocol, ReceiveLog, RouteRecorder,
    ShardableProtocol, ShardedCycleEngine, SpatialPartners,
};
use crate::util::pair_mut;

/// Result of one spatial anti-entropy run (one update, one topology).
#[derive(Debug, Clone)]
pub struct SpatialRunResult {
    /// Cycles until the last site received the update.
    pub t_last: u32,
    /// Mean cycles from injection to receipt over all sites.
    pub t_ave: f64,
    /// Conversations charged per link, accumulated over `t_last` cycles.
    pub compare_traffic: LinkTraffic,
    /// Update-bearing conversations charged per link, accumulated over the
    /// whole run.
    pub update_traffic: LinkTraffic,
    /// Cycles simulated (equals `t_last`: the run stops at convergence).
    pub cycles: u32,
}

impl SpatialRunResult {
    /// Mean compare conversations per link *per cycle*.
    pub fn compare_per_link_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.compare_traffic.mean_per_link() / f64::from(self.cycles)
    }

    /// Mean update transmissions per link over the run.
    pub fn update_per_link(&self) -> f64 {
        self.update_traffic.mean_per_link()
    }
}

/// Driver for the Table 4/5 experiments.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::spatial_ae::AntiEntropySim;
///
/// let topo = topologies::ring(24);
/// let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 });
/// let result = sim.run(7, None);
/// assert!(result.t_last > 0);
/// ```
#[derive(Debug)]
pub struct AntiEntropySim<'a, S = PartnerSampler> {
    topology: &'a Topology,
    routes: Routes,
    sampler: S,
    connection_limit: Option<u32>,
    hunt_limit: u32,
    max_cycles: u32,
}

/// The single key the spreading update uses.
const KEY: u32 = 0;

impl<'a> AntiEntropySim<'a, PartnerSampler> {
    /// Builds a simulator for `topology` under the given spatial
    /// distribution. Routing tables and sampling tables are precomputed
    /// once; reuse the simulator across runs.
    pub fn new(topology: &'a Topology, spatial: Spatial) -> Self {
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        Self::with_selection(topology, sampler)
    }
}

impl<'a, S: PartnerSelection> AntiEntropySim<'a, S> {
    /// Builds a simulator with an arbitrary [`PartnerSelection`] strategy —
    /// e.g. the §4 [`HierarchicalSampler`](epidemic_net::HierarchicalSampler).
    pub fn with_selection(topology: &'a Topology, sampler: S) -> Self {
        let routes = Routes::compute(topology);
        AntiEntropySim {
            topology,
            routes,
            sampler,
            connection_limit: None,
            hunt_limit: 0,
            max_cycles: 10_000,
        }
    }

    /// Limits conversations per site per cycle (Table 5 uses `Some(1)`).
    pub fn connection_limit(mut self, limit: Option<u32>) -> Self {
        self.connection_limit = limit;
        self
    }

    /// Alternate partners a rejected initiator may try.
    pub fn hunt_limit(mut self, hunt: u32) -> Self {
        self.hunt_limit = hunt;
        self
    }

    /// Shortest-path routing tables (exposed for analysis).
    pub fn routes(&self) -> &Routes {
        &self.routes
    }

    /// Runs one experiment: a single update injected at `origin` (or at a
    /// random site when `None`), push-pull full-database anti-entropy each
    /// cycle, simulated until every site holds the update.
    pub fn run(&self, seed: u64, origin: Option<SiteId>) -> SpatialRunResult {
        self.run_observed(seed, origin, &mut ())
    }

    /// As [`AntiEntropySim::run`], reporting every contact and cycle
    /// boundary to `observer` — e.g. a
    /// [`TraceObserver`](crate::engine::trace::TraceObserver) or
    /// [`InvariantObserver`](crate::engine::trace::InvariantObserver).
    pub fn run_observed<'s, O>(
        &'s self,
        seed: u64,
        origin: Option<SiteId>,
        observer: &mut O,
    ) -> SpatialRunResult
    where
        O: crate::engine::Observer<SpatialAntiEntropyProtocol<'s>>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut rng).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        replicas[origin_idx].client_update(KEY, 1);
        replicas[origin_idx].hot_mut().clear(); // pure anti-entropy: nothing is "hot"
        let mut received = ReceiveLog::new(n);
        received.mark(origin_idx, 0);

        let mut protocol = SpatialAntiEntropyProtocol {
            exchange: AntiEntropy::new(Direction::PushPull, Comparison::Full),
            sites,
            replicas,
            received,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: ExchangeScratch::new(),
        };
        let report = CycleEngine::new()
            .connection_limit(self.connection_limit)
            .hunt_limit(self.hunt_limit)
            .max_cycles(self.max_cycles)
            .run(
                &mut protocol,
                &SpatialPartners::new(sites, &self.sampler),
                &mut rng,
                observer,
            );

        SpatialRunResult {
            t_last: protocol.received.t_last().unwrap_or(0),
            t_ave: protocol.received.t_ave_all(report.cycles),
            compare_traffic: protocol.recorder.compare,
            update_traffic: protocol.recorder.update,
            cycles: report.cycles,
        }
    }

    /// As [`AntiEntropySim::run`] on the deterministic shard-parallel
    /// engine: the output is a pure function of `(seed, origin, shards)`
    /// and never of `workers` — but it is a *different* RNG universe from
    /// [`AntiEntropySim::run`] (see
    /// [`engine::sharded`](crate::engine::sharded)).
    ///
    /// # Panics
    ///
    /// Panics if a connection limit or hunting is configured: both
    /// serialize on global accept counters and are only supported by the
    /// sequential engine.
    pub fn run_sharded(
        &self,
        seed: u64,
        origin: Option<SiteId>,
        shards: usize,
        workers: usize,
    ) -> SpatialRunResult
    where
        S: Sync,
    {
        self.run_sharded_observed(seed, origin, shards, workers, &mut ())
    }

    /// As [`AntiEntropySim::run_sharded`] with an observer; events arrive
    /// in the engine's deterministic merge order.
    pub fn run_sharded_observed<'s, O>(
        &'s self,
        seed: u64,
        origin: Option<SiteId>,
        shards: usize,
        workers: usize,
        observer: &mut O,
    ) -> SpatialRunResult
    where
        S: Sync,
        O: crate::engine::Observer<SpatialAntiEntropyProtocol<'s>>,
    {
        assert!(
            self.connection_limit.is_none() && self.hunt_limit == 0,
            "sharded mode does not support connection limits or hunting"
        );
        // The origin draw happens on a setup stream; the engine re-derives
        // its own streams from the remainder of the setup stream.
        let mut setup = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut setup).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        replicas[origin_idx].client_update(KEY, 1);
        replicas[origin_idx].hot_mut().clear(); // pure anti-entropy: nothing is "hot"
        let mut received = ReceiveLog::new(n);
        received.mark(origin_idx, 0);

        let mut protocol = SpatialAntiEntropyProtocol {
            exchange: AntiEntropy::new(Direction::PushPull, Comparison::Full),
            sites,
            replicas,
            received,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: ExchangeScratch::new(),
        };
        let report = ShardedCycleEngine::new(shards)
            .workers(workers)
            .max_cycles(self.max_cycles)
            .run(
                &mut protocol,
                &SpatialPartners::new(sites, &self.sampler),
                setup.next_u64(),
                observer,
            );

        SpatialRunResult {
            t_last: protocol.received.t_last().unwrap_or(0),
            t_ave: protocol.received.t_ave_all(report.cycles),
            compare_traffic: protocol.recorder.compare,
            update_traffic: protocol.recorder.update,
            cycles: report.cycles,
        }
    }

    /// Runs `trials` experiments in parallel with seeds
    /// `seed_base + trial`, returning results in trial order — identical
    /// to a sequential loop over [`AntiEntropySim::run`] at any thread
    /// count.
    pub fn run_trials(
        &self,
        runner: crate::runner::TrialRunner,
        trials: u64,
        seed_base: u64,
        origin: Option<SiteId>,
    ) -> Vec<SpatialRunResult>
    where
        S: Sync,
    {
        runner.run(trials, seed_base, |seed| self.run(seed, origin))
    }
}

/// Push-pull full-database anti-entropy over a topology: every site
/// initiates each cycle, the run ends when every site holds the update,
/// and each conversation is charged along its shortest route.
///
/// Public so observers can be written against it (it is the `P` of
/// [`AntiEntropySim::run_observed`]); construction stays crate-internal.
pub struct SpatialAntiEntropyProtocol<'a> {
    exchange: AntiEntropy,
    pub(crate) sites: &'a [SiteId],
    pub(crate) replicas: Vec<Replica<u32, u32>>,
    received: ReceiveLog<u32>,
    recorder: RouteRecorder<'a>,
    scratch: ExchangeScratch<u32, u32>,
}

impl EpidemicProtocol for SpatialAntiEntropyProtocol<'_> {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        self.received.complete()
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.replicas, i, j);
        let stats = self.exchange.exchange_with(a, b, &mut self.scratch);
        let flowed = stats.update_flowed();
        self.recorder
            .record(self.sites[i], self.sites[j], u64::from(flowed));
        if flowed {
            for idx in [i, j] {
                if self.replicas[idx].db().entry(&KEY).is_some() {
                    self.received.mark(idx, cycle);
                }
            }
        }
        ContactStats {
            sent: u64::from(flowed),
            useful: u64::from(flowed),
        }
    }
}

/// Read-only cycle context for the sharded spatial anti-entropy path.
pub struct SpatialAeCtx<'p> {
    exchange: AntiEntropy,
    sites: &'p [SiteId],
    routes: &'p Routes,
}

/// Per-shard accumulator: one exchange scratch per shard plus shard-local
/// traffic counters and deferred receive-log marks.
pub struct SpatialAeShard {
    scratch: ExchangeScratch<u32, u32>,
    compare: LinkTraffic,
    update: LinkTraffic,
    marks: Vec<(usize, u32)>,
}

impl ShardableProtocol for SpatialAntiEntropyProtocol<'_> {
    type Site = Replica<u32, u32>;
    type Ctx<'p>
        = SpatialAeCtx<'p>
    where
        Self: 'p;
    type Shard = SpatialAeShard;

    fn make_shard(&self) -> SpatialAeShard {
        SpatialAeShard {
            scratch: ExchangeScratch::new(),
            compare: LinkTraffic::new(self.recorder.compare.link_count()),
            update: LinkTraffic::new(self.recorder.update.link_count()),
            marks: Vec::new(),
        }
    }

    fn split(&mut self) -> (SpatialAeCtx<'_>, &mut [Replica<u32, u32>]) {
        (
            SpatialAeCtx {
                exchange: self.exchange,
                sites: self.sites,
                routes: self.recorder.routes(),
            },
            &mut self.replicas,
        )
    }

    fn contact_sharded(
        ctx: &SpatialAeCtx<'_>,
        shard: &mut SpatialAeShard,
        cycle: u32,
        pair: ContactPair<'_, Replica<u32, u32>>,
        _rng: &mut StdRng,
    ) -> ContactStats {
        let ContactPair { i, a, j, b } = pair;
        let stats = ctx.exchange.exchange_with(a, b, &mut shard.scratch);
        let flowed = stats.update_flowed();
        shard
            .compare
            .record_route(ctx.routes, ctx.sites[i], ctx.sites[j]);
        if flowed {
            shard
                .update
                .record_route(ctx.routes, ctx.sites[i], ctx.sites[j]);
            if a.db().entry(&KEY).is_some() {
                shard.marks.push((i, cycle));
            }
            if b.db().entry(&KEY).is_some() {
                shard.marks.push((j, cycle));
            }
        }
        ContactStats {
            sent: u64::from(flowed),
            useful: u64::from(flowed),
        }
    }

    fn absorb(&mut self, shard: &mut SpatialAeShard) {
        self.recorder.compare.merge(&shard.compare);
        self.recorder.update.merge(&shard.update);
        shard.compare.clear();
        shard.update.clear();
        for (site, cycle) in shard.marks.drain(..) {
            self.received.mark(site, cycle);
        }
    }
}

impl crate::engine::SirView for SpatialAntiEntropyProtocol<'_> {
    fn sir_counts(&self) -> crate::engine::SirCounts {
        // Pure anti-entropy never removes: every informed site keeps
        // exchanging forever (the run just stops at full coverage).
        let have = self.received.received_count();
        crate::engine::SirCounts {
            susceptible: self.replicas.len() - have,
            infective: have,
            removed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_net::topologies;

    #[test]
    fn converges_on_a_ring() {
        let topo = topologies::ring(20);
        let sim = AntiEntropySim::new(&topo, Spatial::Uniform);
        let r = sim.run(1, Some(topo.sites()[0]));
        assert!(r.t_last > 0);
        assert!(r.t_ave <= f64::from(r.t_last));
        assert_eq!(r.cycles, r.t_last, "run stops exactly at convergence");
        assert!(r.update_traffic.total() > 0);
    }

    #[test]
    fn spatial_distribution_cuts_far_link_traffic() {
        // On a line, the end-to-end links carry far less traffic under
        // Qs^-2 than under uniform selection.
        let topo = topologies::line(30);
        let uniform = AntiEntropySim::new(&topo, Spatial::Uniform);
        let local = AntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 });
        let mut uniform_mid = 0.0;
        let mut local_mid = 0.0;
        let mid_link = topo
            .link_between(topo.sites()[14], topo.sites()[15])
            .unwrap();
        for seed in 0..10 {
            let ru = uniform.run(seed, Some(topo.sites()[0]));
            let rl = local.run(seed, Some(topo.sites()[0]));
            uniform_mid += ru.compare_traffic.at(mid_link) as f64 / f64::from(ru.cycles);
            local_mid += rl.compare_traffic.at(mid_link) as f64 / f64::from(rl.cycles);
        }
        assert!(
            local_mid < uniform_mid / 2.0,
            "local {local_mid} vs uniform {uniform_mid}"
        );
    }

    #[test]
    fn connection_limit_slows_but_still_converges() {
        let topo = topologies::grid(&[5, 5]);
        let unlimited = AntiEntropySim::new(&topo, Spatial::Uniform);
        let limited = AntiEntropySim::new(&topo, Spatial::Uniform).connection_limit(Some(1));
        let mut t_unlimited = 0.0;
        let mut t_limited = 0.0;
        for seed in 0..10 {
            t_unlimited += f64::from(unlimited.run(seed, Some(topo.sites()[0])).t_last);
            t_limited += f64::from(limited.run(seed, Some(topo.sites()[0])).t_last);
        }
        assert!(t_limited > t_unlimited, "{t_limited} vs {t_unlimited}");
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = topologies::ring(16);
        let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 1.4 });
        let a = sim.run(5, None);
        let b = sim.run(5, None);
        assert_eq!(a.t_last, b.t_last);
        assert_eq!(a.compare_traffic, b.compare_traffic);
    }
}
