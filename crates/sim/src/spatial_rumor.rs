//! Rumor mongering on a network topology (paper §3.2).
//!
//! Rumor mongering "runs to quiescence", so on irregular topologies with
//! nonuniform spatial distributions it can fail outright — the Figure 1 and
//! Figure 2 pathologies. The paper's methodology: increase `k` until the
//! protocol achieves 100% distribution in every one of `N` trials, then
//! compare traffic and convergence against anti-entropy (Table 4). This
//! module provides the topology-aware driver, the minimal-`k` search and a
//! failure-probability estimator.

use epidemic_core::rumor::{self, RumorConfig};
use epidemic_core::{Direction, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, PartnerSampler, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::engine::{
    ContactPair, ContactStats, CycleEngine, EpidemicProtocol, ReceiveLog, Roster, RouteRecorder,
    ShardableProtocol, ShardedCycleEngine, SpatialPartners,
};
use crate::runner::TrialRunner;
use crate::util::pair_mut;

/// Result of one topology-aware rumor-mongering run.
#[derive(Debug, Clone)]
pub struct SpatialRumorResult {
    /// Whether every site received the update before quiescence.
    pub complete: bool,
    /// Fraction of sites still susceptible at quiescence.
    pub residue: f64,
    /// Cycles until the last receiving site got the update.
    pub t_last: u32,
    /// Mean cycles to receipt over receiving sites.
    pub t_ave: f64,
    /// Conversations per link, accumulated over the run.
    pub compare_traffic: LinkTraffic,
    /// Update transmissions per link, accumulated over the run.
    pub update_traffic: LinkTraffic,
    /// Cycles until quiescence.
    pub cycles: u32,
    /// Sites that never received the update.
    pub susceptible_sites: Vec<SiteId>,
}

/// Driver for rumor mongering with spatial partner selection.
///
/// # Example
///
/// ```
/// use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::spatial_rumor::SpatialRumorSim;
///
/// let topo = topologies::ring(16);
/// let cfg = RumorConfig::new(Direction::PushPull, Feedback::Feedback,
///                            Removal::Counter { k: 4 });
/// let sim = SpatialRumorSim::new(&topo, Spatial::QsPower { a: 1.2 }, cfg);
/// let r = sim.run(3, None);
/// assert!(r.cycles > 0);
/// ```
#[derive(Debug)]
pub struct SpatialRumorSim<'a> {
    topology: &'a Topology,
    routes: Routes,
    sampler: PartnerSampler,
    cfg: RumorConfig,
    max_cycles: u32,
}

const KEY: u32 = 0;

impl<'a> SpatialRumorSim<'a> {
    /// Builds a simulator; routing and sampling tables are precomputed.
    pub fn new(topology: &'a Topology, spatial: Spatial, cfg: RumorConfig) -> Self {
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        SpatialRumorSim {
            topology,
            routes,
            sampler,
            cfg,
            max_cycles: 100_000,
        }
    }

    /// Replaces the rumor configuration (e.g. to sweep `k`).
    pub fn with_config(mut self, cfg: RumorConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Runs one epidemic from `origin` (random site when `None`) until no
    /// rumor is hot anywhere.
    pub fn run(&self, seed: u64, origin: Option<SiteId>) -> SpatialRumorResult {
        self.run_observed(seed, origin, &mut ())
    }

    /// As [`SpatialRumorSim::run`], reporting every contact and cycle
    /// boundary to `observer` — e.g. a
    /// [`TraceObserver`](crate::engine::trace::TraceObserver) or
    /// [`InvariantObserver`](crate::engine::trace::InvariantObserver).
    pub fn run_observed<'s, O>(
        &'s self,
        seed: u64,
        origin: Option<SiteId>,
        observer: &mut O,
    ) -> SpatialRumorResult
    where
        O: crate::engine::Observer<SpatialRumorProtocol<'s>>,
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut rng).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        replicas[origin_idx].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(origin_idx, 0);

        let mut protocol = SpatialRumorProtocol {
            cfg: self.cfg,
            sites,
            replicas,
            received,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: rumor::RumorScratch::new(),
        };
        let report = CycleEngine::new().max_cycles(self.max_cycles).run(
            &mut protocol,
            &SpatialPartners::new(sites, &self.sampler),
            &mut rng,
            observer,
        );

        let received = protocol.received;
        let susceptible_sites: Vec<SiteId> = received.unreceived().map(|i| sites[i]).collect();
        SpatialRumorResult {
            complete: received.complete(),
            residue: received.residue(),
            t_last: received.t_last().unwrap_or(0),
            t_ave: received.t_ave_received(),
            compare_traffic: protocol.recorder.compare,
            update_traffic: protocol.recorder.update,
            cycles: report.cycles,
            susceptible_sites,
        }
    }

    /// As [`SpatialRumorSim::run`] on the deterministic shard-parallel
    /// engine: the output is a pure function of `(seed, origin, shards)`
    /// and never of `workers` — but it is a *different* RNG universe from
    /// [`SpatialRumorSim::run`] (see
    /// [`engine::sharded`](crate::engine::sharded)).
    pub fn run_sharded(
        &self,
        seed: u64,
        origin: Option<SiteId>,
        shards: usize,
        workers: usize,
    ) -> SpatialRumorResult {
        self.run_sharded_observed(seed, origin, shards, workers, &mut ())
    }

    /// As [`SpatialRumorSim::run_sharded`] with an observer; events arrive
    /// in the engine's deterministic merge order.
    pub fn run_sharded_observed<'s, O>(
        &'s self,
        seed: u64,
        origin: Option<SiteId>,
        shards: usize,
        workers: usize,
        observer: &mut O,
    ) -> SpatialRumorResult
    where
        O: crate::engine::Observer<SpatialRumorProtocol<'s>>,
    {
        // The origin draw happens on a setup stream; the engine re-derives
        // its own streams from the remainder of the setup stream.
        let mut setup = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let n = sites.len();
        let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let origin = origin.unwrap_or_else(|| *sites.choose(&mut setup).expect("sites"));
        let origin_idx = sites.binary_search(&origin).expect("site exists");
        replicas[origin_idx].client_update(KEY, 1);
        let mut received = ReceiveLog::new(n);
        received.mark(origin_idx, 0);

        let mut protocol = SpatialRumorProtocol {
            cfg: self.cfg,
            sites,
            replicas,
            received,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: rumor::RumorScratch::new(),
        };
        let report = ShardedCycleEngine::new(shards)
            .workers(workers)
            .max_cycles(self.max_cycles)
            .run(
                &mut protocol,
                &SpatialPartners::new(sites, &self.sampler),
                setup.next_u64(),
                observer,
            );

        let received = protocol.received;
        let susceptible_sites: Vec<SiteId> = received.unreceived().map(|i| sites[i]).collect();
        SpatialRumorResult {
            complete: received.complete(),
            residue: received.residue(),
            t_last: received.t_last().unwrap_or(0),
            t_ave: received.t_ave_received(),
            compare_traffic: protocol.recorder.compare,
            update_traffic: protocol.recorder.update,
            cycles: report.cycles,
            susceptible_sites,
        }
    }

    /// Runs `trials` epidemics in parallel with seeds
    /// `seed_base + trial`, returning results in trial order — identical
    /// to a sequential loop over [`SpatialRumorSim::run`].
    pub fn run_trials(
        &self,
        runner: TrialRunner,
        trials: u64,
        seed_base: u64,
        origin: Option<SiteId>,
    ) -> Vec<SpatialRumorResult> {
        runner.run(trials, seed_base, |seed| self.run(seed, origin))
    }
}

/// Topology-aware rumor mongering: push initiators are the infective
/// sites, pull/push-pull initiators are everyone, and each contact is
/// charged along its shortest route (one comparison unit per conversation,
/// one update unit per entry sent).
///
/// Public so observers can be written against it (it is the `P` of
/// [`SpatialRumorSim::run_observed`]); construction stays crate-internal.
pub struct SpatialRumorProtocol<'a> {
    cfg: RumorConfig,
    pub(crate) sites: &'a [SiteId],
    pub(crate) replicas: Vec<Replica<u32, u32>>,
    received: ReceiveLog<u32>,
    recorder: RouteRecorder<'a>,
    scratch: rumor::RumorScratch<u32>,
}

impl EpidemicProtocol for SpatialRumorProtocol<'_> {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn roster(&self) -> Roster {
        match self.cfg.direction {
            Direction::Push => Roster::Active,
            Direction::Pull | Direction::PushPull => Roster::Everyone,
        }
    }

    fn is_active(&self, i: usize) -> bool {
        !self.replicas[i].hot().is_empty()
    }

    fn finished(&self, _cycle: u32, active: &[usize]) -> bool {
        active.is_empty()
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.replicas, i, j);
        let stats = rumor::contact_with(&self.cfg, a, b, rng, &mut self.scratch);
        self.recorder.record(
            self.sites[i],
            self.sites[j],
            // Saturating, not panicking: the conversion cannot fail on
            // 64-bit targets, and a hot-path abort is the wrong failure
            // mode if it ever could.
            u64::try_from(stats.sent).unwrap_or(u64::MAX),
        );
        match self.cfg.direction {
            Direction::Push => {
                if stats.useful > 0 {
                    self.received.mark(j, cycle);
                }
            }
            Direction::Pull => {
                if stats.useful > 0 {
                    self.received.mark(i, cycle);
                }
            }
            Direction::PushPull => {
                for idx in [i, j] {
                    if self.replicas[idx].db().entry(&KEY).is_some() {
                        self.received.mark(idx, cycle);
                    }
                }
            }
        }
        stats.into()
    }

    fn end_cycle(&mut self, _cycle: u32, _rng: &mut StdRng) {
        if self.cfg.direction == Direction::Pull {
            for r in &mut self.replicas {
                rumor::end_cycle(&self.cfg, r);
            }
        }
    }
}

/// Read-only cycle context for the sharded spatial rumor path.
pub struct SpatialRumorCtx<'p> {
    cfg: RumorConfig,
    sites: &'p [SiteId],
    routes: &'p Routes,
}

/// Per-shard accumulator: one rumor scratch per shard plus shard-local
/// traffic counters and deferred receive-log marks.
pub struct SpatialRumorShard {
    scratch: rumor::RumorScratch<u32>,
    compare: LinkTraffic,
    update: LinkTraffic,
    marks: Vec<(usize, u32)>,
}

impl ShardableProtocol for SpatialRumorProtocol<'_> {
    type Site = Replica<u32, u32>;
    type Ctx<'p>
        = SpatialRumorCtx<'p>
    where
        Self: 'p;
    type Shard = SpatialRumorShard;

    fn make_shard(&self) -> SpatialRumorShard {
        SpatialRumorShard {
            scratch: rumor::RumorScratch::new(),
            compare: LinkTraffic::new(self.recorder.compare.link_count()),
            update: LinkTraffic::new(self.recorder.update.link_count()),
            marks: Vec::new(),
        }
    }

    fn split(&mut self) -> (SpatialRumorCtx<'_>, &mut [Replica<u32, u32>]) {
        (
            SpatialRumorCtx {
                cfg: self.cfg,
                sites: self.sites,
                routes: self.recorder.routes(),
            },
            &mut self.replicas,
        )
    }

    fn contact_sharded(
        ctx: &SpatialRumorCtx<'_>,
        shard: &mut SpatialRumorShard,
        cycle: u32,
        pair: ContactPair<'_, Replica<u32, u32>>,
        rng: &mut StdRng,
    ) -> ContactStats {
        let ContactPair { i, a, j, b } = pair;
        let stats = rumor::contact_with(&ctx.cfg, a, b, rng, &mut shard.scratch);
        let (from, to) = (ctx.sites[i], ctx.sites[j]);
        shard.compare.record_route(ctx.routes, from, to);
        for _ in 0..stats.sent {
            shard.update.record_route(ctx.routes, from, to);
        }
        match ctx.cfg.direction {
            Direction::Push => {
                if stats.useful > 0 {
                    shard.marks.push((j, cycle));
                }
            }
            Direction::Pull => {
                if stats.useful > 0 {
                    shard.marks.push((i, cycle));
                }
            }
            Direction::PushPull => {
                if a.db().entry(&KEY).is_some() {
                    shard.marks.push((i, cycle));
                }
                if b.db().entry(&KEY).is_some() {
                    shard.marks.push((j, cycle));
                }
            }
        }
        stats.into()
    }

    fn absorb(&mut self, shard: &mut SpatialRumorShard) {
        self.recorder.compare.merge(&shard.compare);
        self.recorder.update.merge(&shard.update);
        shard.compare.clear();
        shard.update.clear();
        for (site, cycle) in shard.marks.drain(..) {
            self.received.mark(site, cycle);
        }
    }
}

impl crate::engine::SirView for SpatialRumorProtocol<'_> {
    fn sir_counts(&self) -> crate::engine::SirCounts {
        let infective = self.replicas.iter().filter(|r| !r.hot().is_empty()).count();
        let have = self.received.received_count();
        crate::engine::SirCounts {
            susceptible: self.replicas.len() - have,
            infective,
            removed: have - infective,
        }
    }
}

/// The paper's §3.2 methodology: the smallest `k ≤ max_k` for which the
/// protocol achieves 100% distribution in each of `trials` runs (random
/// origins). Returns `None` if no such `k` exists within the bound.
///
/// Trials run in parallel waves (one wave per hardware thread batch) so a
/// failing `k` is abandoned as early as a sequential scan would, while a
/// succeeding `k` gets full fan-out. The verdict per `k` is identical to
/// the sequential loop: seeds do not depend on scheduling.
pub fn minimum_k(
    topology: &Topology,
    spatial: Spatial,
    base: RumorConfig,
    trials: u32,
    max_k: u32,
) -> Option<u32> {
    minimum_k_with(TrialRunner::new(), topology, spatial, base, trials, max_k)
}

/// As [`minimum_k`] but on a caller-provided [`TrialRunner`]. The verdict
/// per `k` does not depend on the runner's thread count (seeds are fixed
/// per trial index); only the wave size — and hence how early a failing
/// `k` is abandoned — varies.
pub fn minimum_k_with(
    runner: TrialRunner,
    topology: &Topology,
    spatial: Spatial,
    base: RumorConfig,
    trials: u32,
    max_k: u32,
) -> Option<u32> {
    let wave = u64::try_from(runner.effective_threads(u64::from(trials))).expect("usize fits u64");
    for k in 1..=max_k {
        let cfg = RumorConfig {
            removal: match base.removal {
                epidemic_core::Removal::Counter { .. } => epidemic_core::Removal::Counter { k },
                epidemic_core::Removal::Coin { .. } => epidemic_core::Removal::Coin { k },
            },
            ..base
        };
        let sim = SpatialRumorSim::new(topology, spatial, cfg);
        let mut all_complete = true;
        let mut done = 0u64;
        while all_complete && done < u64::from(trials) {
            let batch = wave.min(u64::from(trials) - done);
            // Seeds `k << 32 | t` with `t < 2^32` make `or` and `add`
            // coincide, so the runner's additive derivation reproduces the
            // historical per-trial seeds exactly.
            let outcomes = sim.run_trials(runner, batch, u64::from(k) << 32 | done, None);
            all_complete = outcomes.iter().all(|r| r.complete);
            done += batch;
        }
        if all_complete {
            return Some(k);
        }
    }
    None
}

/// Estimates the probability that the epidemic fails to reach all sites,
/// over `trials` runs injected at `origin`. Trials run in parallel; the
/// estimate is identical to the sequential loop's.
pub fn failure_probability(
    topology: &Topology,
    spatial: Spatial,
    cfg: RumorConfig,
    trials: u32,
    origin: Option<SiteId>,
) -> f64 {
    let sim = SpatialRumorSim::new(topology, spatial, cfg);
    let failures = TrialRunner::new().fold(
        u64::from(trials),
        0,
        |t| !sim.run(t.wrapping_mul(0x9E37_79B9), origin).complete,
        0u32,
        |acc, failed| acc + u32::from(failed),
    );
    f64::from(failures) / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_core::{Feedback, Removal};
    use epidemic_net::topologies;

    fn cfg(direction: Direction, k: u32) -> RumorConfig {
        RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k })
    }

    #[test]
    fn push_pull_on_ring_completes_with_generous_k() {
        let topo = topologies::ring(20);
        let sim = SpatialRumorSim::new(&topo, Spatial::Uniform, cfg(Direction::PushPull, 5));
        let r = sim.run(1, Some(topo.sites()[0]));
        assert!(r.complete, "residue {}", r.residue);
        assert!(r.update_traffic.total() > 0);
    }

    #[test]
    fn minimum_k_finds_the_smallest_working_k() {
        let topo = topologies::line(24);
        let base = cfg(Direction::PushPull, 1);
        let k = minimum_k(&topo, Spatial::Uniform, base, 10, 16).expect("some k works");
        assert!(k >= 1);
        if k > 1 {
            // Every smaller k must fail at least one of the same trials.
            assert_eq!(minimum_k(&topo, Spatial::Uniform, base, 10, k - 1), None);
        }
    }

    #[test]
    fn push_needs_larger_k_under_local_distributions_on_figure1() {
        // §3.2: push rumor mongering is much more sensitive than push-pull
        // to the combination of a local distribution and an irregular
        // topology. On the Figure 1 pathology, the s–t pair mostly talk to
        // each other under Qs^-2 and k must grow to guarantee escape.
        let topo = topologies::figure1(30);
        let s = topo.node_by_label("s").unwrap();
        let protocol = cfg(Direction::Push, 2);
        // A run is a *catastrophic* failure when the rumor dies inside the
        // s–t pair and most of the network stays susceptible — the paper's
        // Figure 1 scenario. It essentially never happens under uniform
        // selection; under Qs^-2 it has significant probability.
        let catastrophic = |spatial| {
            let sim = SpatialRumorSim::new(&topo, spatial, protocol);
            (0..300)
                .filter(|&t| sim.run(t, Some(s)).residue > 0.5)
                .count()
        };
        let uniform = catastrophic(Spatial::Uniform);
        let local = catastrophic(Spatial::QsPower { a: 2.0 });
        assert!(
            local > uniform + 3,
            "local catastrophic failures {local}/300 should dwarf uniform {uniform}/300"
        );
    }

    #[test]
    fn figure1_push_fails_with_small_k_and_local_distribution() {
        // §3.2 Figure 1: with m >> k, push rumors between the s-t pair can
        // die before escaping to the u_i sites.
        let topo = topologies::figure1(30);
        let s = topo.node_by_label("s").unwrap();
        let p = failure_probability(
            &topo,
            Spatial::QsPower { a: 2.0 },
            cfg(Direction::Push, 1),
            200,
            Some(s),
        );
        assert!(p > 0.05, "failure probability {p}");
    }

    #[test]
    fn figure1_failures_shrink_with_larger_k() {
        let topo = topologies::figure1(30);
        let s = topo.node_by_label("s").unwrap();
        let p1 = failure_probability(
            &topo,
            Spatial::QsPower { a: 2.0 },
            cfg(Direction::Push, 1),
            100,
            Some(s),
        );
        let p6 = failure_probability(
            &topo,
            Spatial::QsPower { a: 2.0 },
            cfg(Direction::Push, 6),
            100,
            Some(s),
        );
        assert!(p6 < p1, "k=6 {p6} should fail less than k=1 {p1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = topologies::grid(&[4, 4]);
        let sim = SpatialRumorSim::new(
            &topo,
            Spatial::QsPower { a: 1.5 },
            cfg(Direction::PushPull, 3),
        );
        let a = sim.run(9, None);
        let b = sim.run(9, None);
        assert_eq!(a.t_last, b.t_last);
        assert_eq!(a.residue, b.residue);
    }
}
