//! Steady-state anti-entropy on a topology — the production Clearinghouse
//! configuration (paper §1.3 + §3.1 combined).
//!
//! Table 4's note: "the distinction between compare and update traffic can
//! be significant if checksums are used for database comparison". This
//! driver runs continuous update injection on a real topology with the
//! recent-update-list comparison, measuring per-link *entry* traffic — the
//! bytes-on-the-wire proxy — under different spatial distributions. It
//! shows that the spatial distribution's savings survive in steady state,
//! where most conversations carry a handful of recent entries rather than
//! one epidemic update.

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::SiteId;
use epidemic_net::{LinkTraffic, PartnerSampler, Routes, Spatial, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::{
    ContactPair, ContactStats, CycleEngine, EpidemicProtocol, Observer, RouteRecorder,
    ShardableProtocol, ShardedCycleEngine, SirCounts, SirView, SpatialPartners, UpdateInjector,
};
use crate::util::pair_mut;

/// Configuration for the steady-state spatial experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialSteadyConfig {
    /// New updates injected per cycle at uniformly random sites.
    pub updates_per_cycle: f64,
    /// Comparison strategy for the per-cycle exchanges.
    pub comparison: Comparison,
    /// Warm-up cycles excluded from measurement.
    pub warmup: u32,
    /// Measured cycles.
    pub cycles: u32,
}

impl Default for SpatialSteadyConfig {
    fn default() -> Self {
        SpatialSteadyConfig {
            updates_per_cycle: 2.0,
            comparison: Comparison::RecentList { tau: 400 },
            warmup: 20,
            cycles: 60,
        }
    }
}

/// Measurements from one steady-state spatial run.
#[derive(Debug, Clone)]
pub struct SpatialSteadyReport {
    /// Conversations per link per cycle (mean over links).
    pub conversations_per_link_cycle: f64,
    /// Entries transmitted per link per cycle (mean over links).
    pub entries_per_link_cycle: f64,
    /// Fraction of exchanges that fell back to a full comparison.
    pub full_compare_rate: f64,
    /// Entry traffic per link, for singling out critical links.
    pub entry_traffic: LinkTraffic,
    /// Cycles measured.
    pub measured_cycles: u32,
    /// Conversations recorded during the measured cycles (the
    /// denominator behind `full_compare_rate`): exactly
    /// `sites × measured_cycles` when every site initiates each cycle.
    pub exchanges: u64,
}

/// Driver: continuous updates + anti-entropy with spatial partner
/// selection on a topology.
///
/// # Example
///
/// ```
/// use epidemic_net::{topologies, Spatial};
/// use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
///
/// let topo = topologies::ring(16);
/// let sim = SpatialSteadySim::new(&topo, Spatial::QsPower { a: 2.0 },
///                                 SpatialSteadyConfig::default());
/// let report = sim.run(3);
/// assert!(report.conversations_per_link_cycle > 0.0);
/// ```
#[derive(Debug)]
pub struct SpatialSteadySim<'a> {
    topology: &'a Topology,
    routes: Routes,
    sampler: PartnerSampler,
    config: SpatialSteadyConfig,
}

impl<'a> SpatialSteadySim<'a> {
    /// Builds the simulator (routing and sampling tables precomputed).
    pub fn new(topology: &'a Topology, spatial: Spatial, config: SpatialSteadyConfig) -> Self {
        let routes = Routes::compute(topology);
        let sampler = PartnerSampler::new(topology, &routes, spatial);
        SpatialSteadySim {
            topology,
            routes,
            sampler,
            config,
        }
    }

    /// Runs the workload.
    pub fn run(&self, seed: u64) -> SpatialSteadyReport {
        let mut rng = StdRng::seed_from_u64(seed);
        let sites = self.topology.sites();
        let replicas: Vec<Replica<u32, u64>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let total = self.config.warmup + self.config.cycles;
        let mut protocol = SpatialSteadyProtocol {
            exchange: AntiEntropy::new(Direction::PushPull, self.config.comparison),
            sites,
            replicas,
            injector: UpdateInjector::new(self.config.updates_per_cycle),
            warmup: self.config.warmup,
            exchanges: 0,
            full_compares: 0,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: ExchangeScratch::new(),
        };
        CycleEngine::new().max_cycles(total).run(
            &mut protocol,
            &SpatialPartners::new(sites, &self.sampler),
            &mut rng,
            &mut (),
        );
        let measured = f64::from(self.config.cycles);
        SpatialSteadyReport {
            conversations_per_link_cycle: protocol.recorder.compare.mean_per_link() / measured,
            entries_per_link_cycle: protocol.recorder.update.mean_per_link() / measured,
            full_compare_rate: protocol.full_compares as f64 / protocol.exchanges as f64,
            entry_traffic: protocol.recorder.update,
            measured_cycles: self.config.cycles,
            exchanges: protocol.exchanges,
        }
    }

    /// As [`SpatialSteadySim::run`] on the deterministic shard-parallel
    /// engine: the output is a pure function of `(seed, shards)` and never
    /// of `workers` — but it is a *different* RNG universe from
    /// [`SpatialSteadySim::run`] (see
    /// [`engine::sharded`](crate::engine::sharded)).
    pub fn run_sharded(&self, seed: u64, shards: usize, workers: usize) -> SpatialSteadyReport {
        self.run_sharded_observed(seed, shards, workers, &mut ())
    }

    /// As [`SpatialSteadySim::run_sharded`], streaming every contact
    /// through `observer` (e.g. an
    /// [`AggregateObserver`](crate::engine::AggregateObserver)). The
    /// sharded engine replays observer events in deterministic
    /// site-sweep order, so the observer's state — like the report — is a
    /// pure function of `(seed, shards)`, never of `workers`.
    pub fn run_sharded_observed<O: for<'b> Observer<SpatialSteadyProtocol<'b>>>(
        &self,
        seed: u64,
        shards: usize,
        workers: usize,
        observer: &mut O,
    ) -> SpatialSteadyReport {
        let sites = self.topology.sites();
        let replicas: Vec<Replica<u32, u64>> = sites.iter().map(|&s| Replica::new(s)).collect();
        let total = self.config.warmup + self.config.cycles;
        let mut protocol = SpatialSteadyProtocol {
            exchange: AntiEntropy::new(Direction::PushPull, self.config.comparison),
            sites,
            replicas,
            injector: UpdateInjector::new(self.config.updates_per_cycle),
            warmup: self.config.warmup,
            exchanges: 0,
            full_compares: 0,
            recorder: RouteRecorder::new(&self.routes, self.topology.link_count()),
            scratch: ExchangeScratch::new(),
        };
        ShardedCycleEngine::new(shards)
            .workers(workers)
            .max_cycles(total)
            .run(
                &mut protocol,
                &SpatialPartners::new(sites, &self.sampler),
                seed,
                observer,
            );
        let measured = f64::from(self.config.cycles);
        SpatialSteadyReport {
            conversations_per_link_cycle: protocol.recorder.compare.mean_per_link() / measured,
            entries_per_link_cycle: protocol.recorder.update.mean_per_link() / measured,
            full_compare_rate: protocol.full_compares as f64 / protocol.exchanges as f64,
            entry_traffic: protocol.recorder.update,
            measured_cycles: self.config.cycles,
            exchanges: protocol.exchanges,
        }
    }
}

/// Steady-state push-pull anti-entropy on a topology: continuous update
/// injection, spatial partner selection, and per-link traffic recorded
/// only after the warm-up period.
///
/// Public only so observers can be written against it (see
/// [`SpatialSteadySim::run_sharded_observed`]); it is constructed
/// exclusively by [`SpatialSteadySim`].
pub struct SpatialSteadyProtocol<'a> {
    exchange: AntiEntropy,
    sites: &'a [SiteId],
    replicas: Vec<Replica<u32, u64>>,
    injector: UpdateInjector,
    warmup: u32,
    exchanges: u64,
    full_compares: u64,
    recorder: RouteRecorder<'a>,
    scratch: ExchangeScratch<u32, u64>,
}

/// Steady-state runs have no single-update SIR notion — keys inject and
/// retire continuously — so the projection is the degenerate
/// all-infective one: every site is permanently exchanging. Observers
/// that track per-update delay still work (the first *useful* contact
/// marks a site), while the SIR curve is deliberately flat.
impl SirView for SpatialSteadyProtocol<'_> {
    fn sir_counts(&self) -> SirCounts {
        SirCounts {
            susceptible: 0,
            infective: self.replicas.len(),
            removed: 0,
        }
    }
}

impl EpidemicProtocol for SpatialSteadyProtocol<'_> {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        // The run length is fixed by the engine's cycle bound.
        false
    }

    fn begin_cycle(&mut self, cycle: u32, rng: &mut StdRng) {
        let time = u64::from(cycle) * 10;
        for r in self.replicas.iter_mut() {
            r.advance_clock(time);
        }
        let replicas = &mut self.replicas;
        self.injector.inject(replicas.len(), rng, |site, key| {
            replicas[site].client_update(key, u64::from(cycle));
        });
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.replicas, i, j);
        let stats = self.exchange.exchange_with(a, b, &mut self.scratch);
        let sent = stats.total_sent() as u64;
        // Record strictly after the warm-up: contacts run at cycle values
        // `1..=warmup + cycles`, so `cycle > warmup` admits exactly
        // `cycles` cycles — the same count `run()` divides by (audited;
        // pinned by `warmup_boundary_records_exactly_measured_cycles`).
        if cycle > self.warmup {
            self.exchanges += 1;
            self.full_compares += u64::from(stats.full_compare);
            self.recorder.record(self.sites[i], self.sites[j], sent);
        }
        ContactStats { sent, useful: sent }
    }
}

/// Read-only cycle context for the sharded steady-state path.
pub struct SpatialSteadyCtx<'p> {
    exchange: AntiEntropy,
    sites: &'p [SiteId],
    routes: &'p Routes,
    warmup: u32,
}

/// Per-shard accumulator: one exchange scratch per shard plus shard-local
/// exchange counters and traffic.
pub struct SpatialSteadyShard {
    scratch: ExchangeScratch<u32, u64>,
    exchanges: u64,
    full_compares: u64,
    compare: LinkTraffic,
    update: LinkTraffic,
}

impl ShardableProtocol for SpatialSteadyProtocol<'_> {
    type Site = Replica<u32, u64>;
    type Ctx<'p>
        = SpatialSteadyCtx<'p>
    where
        Self: 'p;
    type Shard = SpatialSteadyShard;

    fn make_shard(&self) -> SpatialSteadyShard {
        SpatialSteadyShard {
            scratch: ExchangeScratch::new(),
            exchanges: 0,
            full_compares: 0,
            compare: LinkTraffic::new(self.recorder.compare.link_count()),
            update: LinkTraffic::new(self.recorder.update.link_count()),
        }
    }

    fn split(&mut self) -> (SpatialSteadyCtx<'_>, &mut [Replica<u32, u64>]) {
        (
            SpatialSteadyCtx {
                exchange: self.exchange,
                sites: self.sites,
                routes: self.recorder.routes(),
                warmup: self.warmup,
            },
            &mut self.replicas,
        )
    }

    fn contact_sharded(
        ctx: &SpatialSteadyCtx<'_>,
        shard: &mut SpatialSteadyShard,
        cycle: u32,
        pair: ContactPair<'_, Replica<u32, u64>>,
        _rng: &mut StdRng,
    ) -> ContactStats {
        let ContactPair { i, a, j, b } = pair;
        let stats = ctx.exchange.exchange_with(a, b, &mut shard.scratch);
        let sent = stats.total_sent() as u64;
        // Same warm-up boundary as the sequential path (`cycle > warmup`
        // admits exactly `cycles` measured cycles).
        if cycle > ctx.warmup {
            shard.exchanges += 1;
            shard.full_compares += u64::from(stats.full_compare);
            shard
                .compare
                .record_route(ctx.routes, ctx.sites[i], ctx.sites[j]);
            for _ in 0..sent {
                shard
                    .update
                    .record_route(ctx.routes, ctx.sites[i], ctx.sites[j]);
            }
        }
        ContactStats { sent, useful: sent }
    }

    fn absorb(&mut self, shard: &mut SpatialSteadyShard) {
        self.exchanges += shard.exchanges;
        self.full_compares += shard.full_compares;
        shard.exchanges = 0;
        shard.full_compares = 0;
        self.recorder.compare.merge(&shard.compare);
        self.recorder.update.merge(&shard.update);
        shard.compare.clear();
        shard.update.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epidemic_net::topologies;

    #[test]
    fn steady_state_stays_consistent_enough() {
        let topo = topologies::grid(&[5, 5]);
        let sim = SpatialSteadySim::new(&topo, Spatial::Uniform, SpatialSteadyConfig::default());
        let report = sim.run(1);
        // With τ well above the distribution time, the recent lists absorb
        // nearly everything.
        assert!(
            report.full_compare_rate < 0.1,
            "{}",
            report.full_compare_rate
        );
        assert!(report.entries_per_link_cycle > 0.0);
    }

    #[test]
    fn spatial_selection_cuts_steady_state_entry_traffic_on_far_links() {
        let topo = topologies::line(24);
        let far_link = topo
            .link_between(topo.sites()[11], topo.sites()[12])
            .unwrap();
        let measure = |spatial| {
            let sim = SpatialSteadySim::new(&topo, spatial, SpatialSteadyConfig::default());
            let r = sim.run(3);
            r.entry_traffic.at(far_link) as f64 / f64::from(r.measured_cycles)
        };
        let uniform = measure(Spatial::Uniform);
        let local = measure(Spatial::QsPower { a: 2.0 });
        assert!(local < uniform / 2.0, "local {local} vs uniform {uniform}");
    }

    #[test]
    fn warmup_boundary_records_exactly_measured_cycles() {
        // Audit of the suspected `cycle > warmup` off-by-one: the engine
        // runs contacts at cycle values `1..=warmup + cycles` (the counter
        // increments before `begin_cycle`), so `cycle > warmup` records
        // cycles `warmup + 1 ..= warmup + cycles` — exactly the `cycles`
        // count that `run()` divides by. Every site initiates once per
        // cycle with no connection limit, so the recorded conversation
        // count pins the boundary: one missed or extra cycle shifts it by
        // `n_sites`.
        let topo = topologies::ring(10);
        for (warmup, cycles) in [(20, 60), (0, 5), (7, 1)] {
            let sim = SpatialSteadySim::new(
                &topo,
                Spatial::Uniform,
                SpatialSteadyConfig {
                    warmup,
                    cycles,
                    ..SpatialSteadyConfig::default()
                },
            );
            let report = sim.run(4);
            assert_eq!(
                report.exchanges,
                10 * u64::from(cycles),
                "warmup={warmup} cycles={cycles}"
            );
            assert_eq!(report.measured_cycles, cycles);
        }
    }

    #[test]
    fn sharded_observer_state_is_worker_independent() {
        use crate::engine::AggregateObserver;
        let topo = topologies::grid(&[4, 4]);
        let sim = SpatialSteadySim::new(&topo, Spatial::Uniform, SpatialSteadyConfig::default());
        let plain = sim.run_sharded(5, 4, 1);
        let mut obs1 = AggregateObserver::new();
        let r1 = sim.run_sharded_observed(5, 4, 1, &mut obs1);
        let mut obs2 = AggregateObserver::new();
        let r2 = sim.run_sharded_observed(5, 4, 2, &mut obs2);
        // Same shard count, different worker counts: identical observer
        // bytes and identical reports.
        assert_eq!(obs1.aggregate().to_json(), obs2.aggregate().to_json());
        assert_eq!(r1.exchanges, r2.exchanges);
        assert_eq!(r1.full_compare_rate, r2.full_compare_rate);
        // The observer must not perturb the run itself.
        assert_eq!(plain.exchanges, r1.exchanges);
        assert_eq!(plain.entries_per_link_cycle, r1.entries_per_link_cycle);
        let agg = obs1.finish();
        assert_eq!(agg.sites(), 16);
        assert!(agg.totals().contacts > 0);
    }

    #[test]
    fn zero_rate_carries_no_entries() {
        let topo = topologies::ring(10);
        let sim = SpatialSteadySim::new(
            &topo,
            Spatial::Uniform,
            SpatialSteadyConfig {
                updates_per_cycle: 0.0,
                ..SpatialSteadyConfig::default()
            },
        );
        let report = sim.run(9);
        assert_eq!(report.entries_per_link_cycle, 0.0);
        assert!(report.conversations_per_link_cycle > 0.0);
    }
}
