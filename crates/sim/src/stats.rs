//! Summary statistics over repeated simulation runs.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use epidemic_sim::Summary;
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two observations).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_match_closed_form() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev() - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_well_behaved() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = Summary::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(42.0));
    }
}

/// Exact quantile accumulator for the modest sample counts the experiment
/// harness produces (hundreds of trials): stores all observations, sorts
/// on demand.
///
/// # Example
///
/// ```
/// use epidemic_sim::stats::Quantiles;
/// let mut q: Quantiles = (1..=100).map(f64::from).collect();
/// assert_eq!(q.quantile(0.5), Some(50.0));
/// assert_eq!(q.quantile(0.99), Some(99.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Quantiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Quantiles {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Quantiles::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method; `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or any observation was NaN.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

impl Extend<f64> for Quantiles {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut q = Quantiles::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn nearest_rank_quantiles() {
        let mut q: Quantiles = [5.0, 1.0, 3.0, 2.0, 4.0].into_iter().collect();
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.median(), Some(3.0));
        assert_eq!(q.quantile(1.0), Some(5.0));
        assert_eq!(q.quantile(0.2), Some(1.0));
        assert_eq!(q.quantile(0.21), Some(2.0));
    }

    #[test]
    fn empty_and_single() {
        let mut q = Quantiles::new();
        assert_eq!(q.median(), None);
        q.push(7.0);
        assert_eq!(q.quantile(0.01), Some(7.0));
        assert_eq!(q.quantile(0.99), Some(7.0));
        assert_eq!(q.count(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_out_of_range_q() {
        let mut q: Quantiles = [1.0].into_iter().collect();
        q.quantile(1.5);
    }
}
