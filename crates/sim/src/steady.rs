//! Steady-state anti-entropy under continuous update injection (§1.3).
//!
//! The checksum and recent-update-list refinements only pay off while "the
//! time required for an update to be sent to all sites is small relative to
//! the expected time between new updates" — and the window `τ` must exceed
//! the expected distribution time, or "checksum comparisons will usually
//! fail and network traffic will rise to a level slightly higher than what
//! would be produced by anti-entropy without checksums". This driver
//! measures exactly that: a fleet under a constant update rate, running one
//! anti-entropy exchange per site per cycle, reporting how often each
//! comparison strategy had to fall back to a full database comparison.

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::SiteId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::{ContactStats, CycleEngine, EpidemicProtocol, UniformPartners, UpdateInjector};
use crate::util::pair_mut;

/// Configuration for the steady-state experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateSim {
    /// Number of sites.
    pub sites: usize,
    /// New client updates injected per cycle (at random sites, fresh keys).
    pub updates_per_cycle: f64,
    /// Warm-up cycles excluded from measurement.
    pub warmup: u32,
    /// Measured cycles.
    pub cycles: u32,
}

impl Default for SteadyStateSim {
    fn default() -> Self {
        SteadyStateSim {
            sites: 60,
            updates_per_cycle: 1.0,
            warmup: 30,
            cycles: 100,
        }
    }
}

/// Measurements from one steady-state run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateReport {
    /// Fraction of exchanges that needed a full database comparison.
    pub full_compare_rate: f64,
    /// Mean entries transmitted per exchange.
    pub entries_per_exchange: f64,
    /// Mean entries *scanned* per exchange (the diffing work).
    pub scanned_per_exchange: f64,
    /// Database size at the end of the run.
    pub final_db_len: usize,
}

impl SteadyStateSim {
    /// Runs the workload under the given comparison strategy.
    pub fn run(&self, comparison: Comparison, seed: u64) -> SteadyStateReport {
        assert!(self.sites >= 2);
        let n = self.sites;
        let mut rng = StdRng::seed_from_u64(seed);
        let replicas: Vec<Replica<u32, u64>> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("site count fits u32"))))
            .collect();
        let total = self.warmup + self.cycles;
        let mut protocol = SteadyStateProtocol {
            exchange: AntiEntropy::new(Direction::PushPull, comparison),
            replicas,
            injector: UpdateInjector::new(self.updates_per_cycle),
            warmup: self.warmup,
            total,
            exchanges: 0,
            full_compares: 0,
            sent: 0,
            scanned: 0,
            scratch: ExchangeScratch::new(),
        };
        CycleEngine::new().max_cycles(total).run(
            &mut protocol,
            &UniformPartners::new(n),
            &mut rng,
            &mut (),
        );
        SteadyStateReport {
            full_compare_rate: protocol.full_compares as f64 / protocol.exchanges as f64,
            entries_per_exchange: protocol.sent as f64 / protocol.exchanges as f64,
            scanned_per_exchange: protocol.scanned as f64 / protocol.exchanges as f64,
            final_db_len: protocol.replicas[0].db().len(),
        }
    }
}

/// Push-pull anti-entropy under continuous update injection: one exchange
/// per site per cycle, with the diffing counters accumulated only after
/// the warm-up period.
struct SteadyStateProtocol {
    exchange: AntiEntropy,
    replicas: Vec<Replica<u32, u64>>,
    injector: UpdateInjector,
    warmup: u32,
    total: u32,
    exchanges: u64,
    full_compares: u64,
    sent: u64,
    scanned: u64,
    scratch: ExchangeScratch<u32, u64>,
}

impl EpidemicProtocol for SteadyStateProtocol {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn finished(&self, cycle: u32, _active: &[usize]) -> bool {
        cycle >= self.total
    }

    fn begin_cycle(&mut self, cycle: u32, rng: &mut StdRng) {
        let time = u64::from(cycle) * 10;
        for r in self.replicas.iter_mut() {
            r.advance_clock(time);
        }
        let replicas = &mut self.replicas;
        self.injector.inject(replicas.len(), rng, |site, key| {
            replicas[site].client_update(key, u64::from(cycle));
        });
    }

    fn contact(&mut self, cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.replicas, i, j);
        let stats = self.exchange.exchange_with(a, b, &mut self.scratch);
        let sent = stats.total_sent() as u64;
        if cycle > self.warmup {
            self.exchanges += 1;
            self.full_compares += u64::from(stats.full_compare);
            self.sent += sent;
            self.scanned += stats.entries_scanned as u64;
        }
        ContactStats { sent, useful: sent }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generous_window_avoids_full_compares() {
        // Distribution time on 60 sites is O(log n) ≈ 10 cycles = 100
        // ticks; τ = 400 ticks is comfortable.
        let sim = SteadyStateSim::default();
        let r = sim.run(Comparison::RecentList { tau: 400 }, 1);
        assert!(
            r.full_compare_rate < 0.05,
            "full compare rate {}",
            r.full_compare_rate
        );
    }

    #[test]
    fn tight_window_degenerates_to_full_compares() {
        // τ = 10 ticks (one cycle) is far below the distribution time:
        // the paper predicts checksum comparisons "will usually fail".
        let sim = SteadyStateSim::default();
        let r = sim.run(Comparison::RecentList { tau: 10 }, 1);
        assert!(
            r.full_compare_rate > 0.5,
            "full compare rate {}",
            r.full_compare_rate
        );
    }

    #[test]
    fn naive_checksums_fail_under_any_update_traffic() {
        // With one update/cycle somewhere in the network, two random sites
        // almost always have different contents at comparison time.
        let sim = SteadyStateSim::default();
        let r = sim.run(Comparison::Checksum, 2);
        assert!(r.full_compare_rate > 0.3, "{}", r.full_compare_rate);
    }

    #[test]
    fn peel_back_ships_only_the_diff() {
        let sim = SteadyStateSim::default();
        let full = sim.run(Comparison::Full, 3);
        let peel = sim.run(Comparison::PeelBack, 3);
        // Peel back scans far less than a full comparison of ~100-entry
        // databases while sending a similar number of entries.
        assert!(peel.scanned_per_exchange < full.scanned_per_exchange / 2.0);
        assert!(peel.entries_per_exchange <= full.entries_per_exchange + 1.0);
    }

    #[test]
    fn quiescent_network_costs_nothing_but_checksums() {
        let sim = SteadyStateSim {
            updates_per_cycle: 0.0,
            ..SteadyStateSim::default()
        };
        let r = sim.run(Comparison::Checksum, 4);
        assert_eq!(r.full_compare_rate, 0.0);
        assert_eq!(r.entries_per_exchange, 0.0);
        assert_eq!(r.final_db_len, 0);
    }

    #[test]
    fn higher_update_rates_need_wider_windows() {
        let tau = 150;
        let slow = SteadyStateSim {
            updates_per_cycle: 0.2,
            ..SteadyStateSim::default()
        }
        .run(Comparison::RecentList { tau }, 5);
        let fast = SteadyStateSim {
            updates_per_cycle: 4.0,
            ..SteadyStateSim::default()
        }
        .run(Comparison::RecentList { tau }, 5);
        assert!(
            fast.full_compare_rate >= slow.full_compare_rate,
            "fast {} vs slow {}",
            fast.full_compare_rate,
            slow.full_compare_rate
        );
    }
}
