//! Internal helpers shared by the simulation drivers.

/// Mutable references to two distinct elements of a slice.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of bounds.
pub(crate) fn pair_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert_ne!(i, j, "a site cannot exchange with itself");
    if i < j {
        let (lo, hi) = slice.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = slice.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_mut_returns_requested_elements() {
        let mut v = [10, 20, 30, 40];
        let (a, b) = pair_mut(&mut v, 3, 1);
        assert_eq!((*a, *b), (40, 20));
        *a = 0;
        *b = 1;
        assert_eq!(v, [10, 1, 30, 0]);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn pair_mut_rejects_equal_indices() {
        let mut v = [1, 2];
        let _ = pair_mut(&mut v, 1, 1);
    }
}
