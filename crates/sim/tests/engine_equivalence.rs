//! Engine ↔ legacy driver equivalence fixture.
//!
//! `fixtures/engine_equivalence.txt` records, in `{:?}` (round-trip exact
//! for `f64`) formatting, the outputs of **every** simulation driver over a
//! grid of small configurations and seeds. The file was generated from the
//! pre-engine drivers; after the drivers were ported onto
//! `epidemic_sim::engine` the same entry points must reproduce it byte for
//! byte, proving the refactor preserved each driver's exact RNG draw
//! sequence (partner selection, hunting, coin flips, shuffles).
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! cargo test -p epidemic-sim --test engine_equivalence -- --ignored regenerate
//! ```
//!
//! The property tests at the bottom are the part of satellite #3 that
//! outlives the legacy code: run-twice determinism and thread-count
//! invariance over *randomized* configurations, not just the fixed grid.

use std::fmt::Write as _;

use epidemic_core::{Comparison, Direction, Feedback, Removal, RumorConfig};
use epidemic_net::{topologies, LinkTraffic, Spatial};
use epidemic_sim::event::{AsyncAntiEntropySim, AsyncRumorEpidemic};
use epidemic_sim::failures::{Churn, ChurnedAntiEntropySim};
use epidemic_sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemic_sim::rumor_steady::{RumorSteadyConfig, RumorSteadySim};
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::spatial_ae::AntiEntropySim;
use epidemic_sim::spatial_rumor::SpatialRumorSim;
use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};
use epidemic_sim::steady::SteadyStateSim;

const FIXTURE: &str = include_str!("fixtures/engine_equivalence.txt");

/// Formats link traffic compactly but exactly: total plus per-link counts.
fn traffic(t: &LinkTraffic) -> String {
    format!("total={} counts={:?}", t.total(), t.counts())
}

/// The rumor-mongering configuration grid: every direction, feedback and
/// removal rule, synchronous and sequential rounds, connection limits and
/// hunting, counter reset and push-pull minimization.
fn rumor_grid() -> Vec<(&'static str, RumorEpidemic)> {
    let counter = |k| Removal::Counter { k };
    let coin = |k| Removal::Coin { k };
    vec![
        (
            "push-fb-ctr1-sync",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                counter(1),
            )),
        ),
        (
            "push-blind-coin2-sync",
            RumorEpidemic::new(RumorConfig::new(Direction::Push, Feedback::Blind, coin(2))),
        ),
        (
            "pull-fb-ctr2-sync",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Pull,
                Feedback::Feedback,
                counter(2),
            )),
        ),
        (
            "pull-blind-coin1-sync",
            RumorEpidemic::new(RumorConfig::new(Direction::Pull, Feedback::Blind, coin(1))),
        ),
        (
            "pull-fb-coin2-sync",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Pull,
                Feedback::Feedback,
                coin(2),
            )),
        ),
        (
            "pushpull-fb-ctr2",
            RumorEpidemic::new(RumorConfig::new(
                Direction::PushPull,
                Feedback::Feedback,
                counter(2),
            )),
        ),
        (
            "pushpull-fb-ctr2-min",
            RumorEpidemic::new(
                RumorConfig::new(Direction::PushPull, Feedback::Feedback, counter(2))
                    .with_minimization(),
            ),
        ),
        (
            "push-fb-ctr1-seq",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                counter(1),
            ))
            .synchronous(false),
        ),
        (
            "pull-fb-ctr2-seq",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Pull,
                Feedback::Feedback,
                counter(2),
            ))
            .synchronous(false),
        ),
        (
            "push-fb-ctr3-reset-seq",
            RumorEpidemic::new(
                RumorConfig::new(Direction::Push, Feedback::Feedback, counter(3))
                    .with_reset_on_useful(true),
            )
            .synchronous(false),
        ),
        (
            "push-fb-ctr2-limit1",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                counter(2),
            ))
            .connection_limit(Some(1)),
        ),
        (
            "push-fb-ctr2-limit1-hunt4",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                counter(2),
            ))
            .connection_limit(Some(1))
            .hunt_limit(4),
        ),
    ]
}

/// Builds the full fixture text from the current driver implementations.
#[allow(clippy::too_many_lines)]
fn build_fixture() -> String {
    let mut out = String::new();

    // --- mixing::RumorEpidemic -----------------------------------------
    for (tag, epidemic) in rumor_grid() {
        for seed in 0..4u64 {
            let r = epidemic.run(24, seed);
            writeln!(out, "mixing/{tag} seed={seed} => {r:?}").unwrap();
        }
    }
    // SIR trace (run_traced): pins the per-cycle observation points.
    let traced = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 1 },
    ))
    .run_traced(24, 0);
    writeln!(out, "mixing/traced seed=0 => {traced:?}").unwrap();

    // --- mixing::AntiEntropyEpidemic -----------------------------------
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        for seed in 0..3u64 {
            let r = AntiEntropyEpidemic::new(direction).run(32, seed);
            writeln!(out, "ae-mixing/{direction:?} seed={seed} => {r:?}").unwrap();
        }
    }

    // --- spatial_ae::AntiEntropySim ------------------------------------
    let grid = topologies::grid(&[4, 4]);
    let ring = topologies::ring(12);
    for (topo_tag, topo) in [("grid4x4", &grid), ("ring12", &ring)] {
        for (sp_tag, spatial) in [
            ("uniform", Spatial::Uniform),
            ("qs2", Spatial::QsPower { a: 2.0 }),
        ] {
            for (lim_tag, limit, hunt) in [("nolimit", None, 0u32), ("limit1-hunt2", Some(1), 2u32)]
            {
                let sim = AntiEntropySim::new(topo, spatial)
                    .connection_limit(limit)
                    .hunt_limit(hunt);
                for seed in 0..3u64 {
                    let r = sim.run(seed, None);
                    writeln!(
                        out,
                        "spatial-ae/{topo_tag}/{sp_tag}/{lim_tag} seed={seed} => \
                         t_last={} t_ave={:?} cycles={} cmp[{}] upd[{}]",
                        r.t_last,
                        r.t_ave,
                        r.cycles,
                        traffic(&r.compare_traffic),
                        traffic(&r.update_traffic),
                    )
                    .unwrap();
                }
            }
        }
    }

    // --- spatial_rumor::SpatialRumorSim --------------------------------
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
        let sim = SpatialRumorSim::new(&ring, Spatial::QsPower { a: 1.5 }, cfg);
        for seed in 0..3u64 {
            let r = sim.run(seed, None);
            writeln!(
                out,
                "spatial-rumor/ring12/{direction:?} seed={seed} => \
                 complete={} residue={:?} t_last={} t_ave={:?} cycles={} \
                 susceptible={:?} cmp[{}] upd[{}]",
                r.complete,
                r.residue,
                r.t_last,
                r.t_ave,
                r.cycles,
                r.susceptible_sites,
                traffic(&r.compare_traffic),
                traffic(&r.update_traffic),
            )
            .unwrap();
        }
    }

    // --- failures::ChurnedAntiEntropySim -------------------------------
    for (tag, churn) in [
        (
            "mild",
            Churn {
                fail: 0.05,
                recover: 0.5,
            },
        ),
        (
            "harsh",
            Churn {
                fail: 0.3,
                recover: 0.3,
            },
        ),
    ] {
        let sim = ChurnedAntiEntropySim::new(&grid, Spatial::Uniform, churn);
        for seed in 0..3u64 {
            let r = sim.run(seed, None);
            writeln!(out, "churn/{tag} seed={seed} => {r:?}").unwrap();
        }
    }

    // --- steady::SteadyStateSim ----------------------------------------
    let steady = SteadyStateSim {
        sites: 24,
        updates_per_cycle: 1.0,
        warmup: 5,
        cycles: 10,
    };
    for (tag, comparison) in [
        ("full", Comparison::Full),
        ("checksum", Comparison::Checksum),
        ("recent400", Comparison::RecentList { tau: 400 }),
        ("peelback", Comparison::PeelBack),
    ] {
        for seed in 0..2u64 {
            let r = steady.run(comparison, seed);
            writeln!(out, "steady/{tag} seed={seed} => {r:?}").unwrap();
        }
    }

    // --- rumor_steady::RumorSteadySim ----------------------------------
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
        let sim = RumorSteadySim::new(
            cfg,
            RumorSteadyConfig {
                sites: 24,
                updates_per_cycle: 0.5,
                inject_cycles: 10,
                drain_cycles: 20,
            },
        );
        for seed in 0..2u64 {
            let r = sim.run(seed);
            writeln!(out, "rumor-steady/{direction:?} seed={seed} => {r:?}").unwrap();
        }
    }

    // --- spatial_steady::SpatialSteadySim ------------------------------
    for (sp_tag, spatial) in [
        ("uniform", Spatial::Uniform),
        ("qs15", Spatial::QsPower { a: 1.5 }),
    ] {
        let sim = SpatialSteadySim::new(
            &ring,
            spatial,
            SpatialSteadyConfig {
                updates_per_cycle: 1.0,
                comparison: Comparison::RecentList { tau: 400 },
                warmup: 4,
                cycles: 8,
            },
        );
        for seed in 0..2u64 {
            let r = sim.run(seed);
            writeln!(
                out,
                "spatial-steady/ring12/{sp_tag} seed={seed} => \
                 conv={:?} entries={:?} full={:?} measured={} traffic[{}]",
                r.conversations_per_link_cycle,
                r.entries_per_link_cycle,
                r.full_compare_rate,
                r.measured_cycles,
                traffic(&r.entry_traffic),
            )
            .unwrap();
        }
    }

    // --- event::AsyncAntiEntropySim ------------------------------------
    let async_ae = AsyncAntiEntropySim::new(&ring, Spatial::QsPower { a: 1.5 }, 0.3);
    for seed in 0..2u64 {
        let r = async_ae.run(seed, None);
        writeln!(
            out,
            "async-ae/ring12 seed={seed} => t_last={:?} t_ave={:?} exchanges={} \
             per_period={:?} cmp[{}] upd[{}]",
            r.t_last,
            r.t_ave,
            r.exchanges,
            r.compare_per_link_period,
            traffic(&r.compare_traffic),
            traffic(&r.update_traffic),
        )
        .unwrap();
    }

    // --- event::AsyncRumorEpidemic -------------------------------------
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
        let sim = AsyncRumorEpidemic::new(cfg, 0.2);
        for seed in 0..2u64 {
            let r = sim.run(24, seed);
            writeln!(out, "async-rumor/{direction:?} seed={seed} => {r:?}").unwrap();
        }
    }

    out
}

#[test]
fn drivers_match_recorded_fixture() {
    let actual = build_fixture();
    if actual != FIXTURE {
        // Report the first diverging line — a full assert_eq! dump of two
        // multi-kilobyte strings is unreadable.
        for (i, (a, f)) in actual.lines().zip(FIXTURE.lines()).enumerate() {
            assert_eq!(a, f, "first divergence at fixture line {}", i + 1);
        }
        assert_eq!(
            actual.lines().count(),
            FIXTURE.lines().count(),
            "fixture line count changed"
        );
        unreachable!("strings differ but no line diverged");
    }
}

#[test]
#[ignore = "overwrites the checked-in fixture"]
fn regenerate() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    std::fs::create_dir_all(dir).expect("create fixtures dir");
    std::fs::write(format!("{dir}/engine_equivalence.txt"), build_fixture())
        .expect("write fixture");
}

// ---------------------------------------------------------------------
// Randomized determinism properties (the part of the harness that remains
// meaningful after the legacy driver bodies are gone).
// ---------------------------------------------------------------------

use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = RumorConfig> {
    (0u8..3, any::<bool>(), any::<bool>(), 1u32..4).prop_map(|(dir, fb, coin, k)| {
        let direction = match dir {
            0 => Direction::Push,
            1 => Direction::Pull,
            _ => Direction::PushPull,
        };
        let feedback = if fb {
            Feedback::Feedback
        } else {
            Feedback::Blind
        };
        let removal = if coin {
            Removal::Coin { k }
        } else {
            Removal::Counter { k }
        };
        RumorConfig::new(direction, feedback, removal)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed → identical result, twice over, for any small rumor
    /// configuration (sequential and synchronous rounds).
    #[test]
    fn rumor_epidemic_is_deterministic(
        cfg in arb_cfg(),
        synchronous in any::<bool>(),
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let epidemic = RumorEpidemic::new(cfg).synchronous(synchronous);
        prop_assert_eq!(epidemic.run(n, seed), epidemic.run(n, seed));
    }

    /// Multi-trial fan-out is thread-count invariant for any configuration.
    #[test]
    fn rumor_trials_are_thread_invariant(
        cfg in arb_cfg(),
        n in 4usize..16,
        seed in any::<u64>(),
    ) {
        let epidemic = RumorEpidemic::new(cfg);
        let one = epidemic.run_trials(TrialRunner::new().threads(1), n, 6, seed);
        let four = epidemic.run_trials(TrialRunner::new().threads(4), n, 6, seed);
        prop_assert_eq!(one, four);
    }

    /// Spatial anti-entropy runs are deterministic for any seed/origin.
    #[test]
    fn spatial_ae_is_deterministic(seed in any::<u64>(), a in 1.0f64..3.0) {
        let topo = topologies::ring(10);
        let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a });
        let x = sim.run(seed, None);
        let y = sim.run(seed, None);
        prop_assert_eq!(x.t_last, y.t_last);
        prop_assert_eq!(x.t_ave, y.t_ave);
        prop_assert_eq!(x.compare_traffic, y.compare_traffic);
        prop_assert_eq!(x.update_traffic, y.update_traffic);
    }
}
