//! The invariant checker must pass cleanly on every shipped driver —
//! rumor mongering in all three directions, bit anti-entropy, and both
//! spatial drivers — and the trace observer composed alongside it must
//! agree with the driver's own accounting.

use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::{topologies, Spatial};
use epidemic_sim::engine::trace::{InvariantObserver, TraceObserver};
use epidemic_sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemic_sim::spatial_ae::AntiEntropySim;
use epidemic_sim::spatial_rumor::SpatialRumorSim;
use epidemic_trace::TraceConfig;

fn rumor_cfg(direction: Direction) -> RumorConfig {
    RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 3 })
}

#[test]
fn rumor_mongering_is_invariant_clean_in_every_direction() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        for seed in 0..5 {
            let mut check = InvariantObserver::new();
            let result =
                RumorEpidemic::new(rumor_cfg(direction)).run_observed(300, seed, &mut check);
            assert!(
                check.is_clean(),
                "{direction:?} seed {seed}: {}",
                check.to_jsonl()
            );
            assert!(result.cycles > 0);
        }
    }
}

#[test]
fn blind_coin_rumors_are_invariant_clean() {
    // The degenerate variant (blind, coin, k = 1) mostly dies early — the
    // invariants must hold on failed epidemics too.
    let cfg = RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 1 });
    for seed in 0..10 {
        let mut check = InvariantObserver::new();
        RumorEpidemic::new(cfg).run_observed(200, seed, &mut check);
        assert!(check.is_clean(), "seed {seed}: {}", check.to_jsonl());
    }
}

#[test]
fn bit_anti_entropy_is_invariant_clean() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let mut check = InvariantObserver::new();
        let run = AntiEntropyEpidemic::new(direction).run_observed(256, 11, &mut check);
        assert!(run.complete);
        assert!(check.is_clean(), "{direction:?}: {}", check.to_jsonl());
    }
}

#[test]
fn spatial_anti_entropy_is_invariant_clean() {
    let topo = topologies::grid(&[6, 6]);
    let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 1.5 });
    for seed in 0..3 {
        let mut check = InvariantObserver::new();
        let r = sim.run_observed(seed, Some(topo.sites()[0]), &mut check);
        assert!(r.t_last > 0);
        assert!(check.is_clean(), "seed {seed}: {}", check.to_jsonl());
    }
}

#[test]
fn spatial_rumor_mongering_is_invariant_clean() {
    let topo = topologies::ring(24);
    let sim = SpatialRumorSim::new(&topo, Spatial::Uniform, rumor_cfg(Direction::PushPull));
    for seed in 0..3 {
        let mut check = InvariantObserver::new();
        let r = sim.run_observed(seed, Some(topo.sites()[0]), &mut check);
        assert!(check.is_clean(), "seed {seed}: {}", check.to_jsonl());
        assert!(r.cycles > 0);
    }
}

#[test]
fn trace_and_invariants_compose_and_agree_with_the_driver() {
    let mut trace = TraceObserver::new(TraceConfig::full());
    let mut check = InvariantObserver::new();
    let result = RumorEpidemic::new(rumor_cfg(Direction::PushPull)).run_observed(
        150,
        5,
        &mut (&mut trace, &mut check),
    );
    assert!(check.is_clean(), "{}", check.to_jsonl());

    // The tracer's aggregate totals must reproduce the driver's traffic
    // figure exactly.
    let totals = trace.totals();
    assert!((totals.sent as f64 / 150.0 - result.traffic).abs() < 1e-12);

    let jsonl = trace.finish();
    let run_end = jsonl.lines().last().expect("trace has a run_end line");
    assert!(run_end.contains(r#""event":"run_end""#));
    assert!(run_end.contains(&format!(r#""cycles":{}"#, result.cycles)));
    // Residue at quiescence: final susceptible count / n.
    let expected_s = (result.residue * 150.0).round() as u64;
    assert!(
        run_end.contains(&format!(r#""s":{expected_s},"i":0"#)),
        "{run_end}"
    );
}

#[test]
fn trace_is_identical_across_reruns_of_the_same_seed() {
    let run = || {
        let mut trace = TraceObserver::new(TraceConfig::full());
        RumorEpidemic::new(rumor_cfg(Direction::Push)).run_observed(120, 42, &mut trace);
        trace.finish()
    };
    assert_eq!(run(), run());
}
