//! Differential property tests pinning the megascale fast path to its
//! executable specification, in the style of
//! `crates/sim/tests/shard_merge_differential.rs`.
//!
//! The fast path ([`FastRumorProtocol`] on the [`ActiveCycleEngine`]) and
//! the naive reference loop ([`megascale::reference`]) implement the same
//! counter-RNG contract — partner then feedback coin from a private
//! `(seed, cycle, site)` stream, asynchronous usefulness judgment in
//! ascending roster order — so they must agree *exactly*, not just
//! statistically:
//!
//! * equal [`EpidemicResult`]s for every `(n, k, seed)` tried, uniform
//!   and scale-free, on both storage backends of the reference;
//! * a materialized [`LazyTable`] row exactly where the reference's
//!   eager replicas record a first receipt, with the same cycle stamp;
//! * engine totals equal to the contact-by-contact accumulation over the
//!   observer event stream;
//! * byte-identical output — result, table, and event stream — at worker
//!   counts {1, 2, 8}, for every random configuration tried.

use epidemic_db::{Backend, LazyTable};
use epidemic_net::DegreeGraph;
use epidemic_sim::engine::{ActiveCycleEngine, AggregateObserver, ContactStats, Observer};
use epidemic_sim::megascale::{reference, FastRumorProtocol};
use epidemic_sim::EpidemicResult;
use proptest::prelude::*;

#[derive(Default, PartialEq, Eq, Debug)]
struct EventLog {
    events: Vec<(u32, usize, usize, u64, u64)>,
}

impl<P: ?Sized> Observer<P> for EventLog {
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.events.push((cycle, i, j, stats.sent, stats.useful));
    }
}

struct FastRun {
    result: EpidemicResult,
    table: LazyTable<u32>,
    log: EventLog,
    totals_match_events: bool,
}

fn run_fast(mut protocol: FastRumorProtocol<'_>, seed: u64, workers: usize) -> FastRun {
    let mut log = EventLog::default();
    let report = ActiveCycleEngine::new()
        .workers(workers)
        .max_cycles(100_000)
        .run(&mut protocol, seed, &mut log);
    let contacts = log.events.len() as u64;
    let sent: u64 = log.events.iter().map(|e| e.3).sum();
    let useful: u64 = log.events.iter().map(|e| e.4).sum();
    let fruitless = log.events.iter().filter(|e| e.4 == 0).count() as u64;
    let totals_match_events = report.totals.contacts == contacts
        && report.totals.sent == sent
        && report.totals.useful == useful
        && report.totals.fruitless == fruitless;
    FastRun {
        result: protocol.result(&report),
        table: protocol.table().clone(),
        log,
        totals_match_events,
    }
}

/// Receipt cycles by site, `None` for sites that never received — the
/// common denominator between the fast path's table and the reference's
/// receive log.
fn receipts_of_table(table: &LazyTable<u32>) -> Vec<Option<u32>> {
    let mut receipts = vec![None; table.site_count()];
    for (site, _value, cycle) in table.rows() {
        assert!(
            receipts[site as usize].is_none(),
            "site {site} materialized twice"
        );
        receipts[site as usize] = Some(cycle);
    }
    receipts
}

fn assert_fast_matches_reference(
    fast: &FastRun,
    spec: &reference::ReferenceRun,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(fast.result, spec.result, "summary results differ");
    let receipts = receipts_of_table(&fast.table);
    prop_assert_eq!(
        receipts.as_slice(),
        spec.received.times(),
        "per-site receipt cycles differ"
    );
    prop_assert!(
        fast.table.values().iter().all(|&v| v == 1),
        "every materialized row holds the injected value"
    );
    prop_assert!(
        fast.totals_match_events,
        "engine totals drifted from the event stream"
    );
    Ok(())
}

fn assert_worker_invariant(
    protocol: &FastRumorProtocol<'_>,
    seed: u64,
) -> Result<(), TestCaseError> {
    let baseline = run_fast(protocol.clone(), seed, 1);
    for workers in [2usize, 8] {
        let candidate = run_fast(protocol.clone(), seed, workers);
        prop_assert_eq!(
            baseline.result,
            candidate.result,
            "result differs at {} workers",
            workers
        );
        prop_assert_eq!(
            &baseline.table,
            &candidate.table,
            "table differs at {} workers",
            workers
        );
        prop_assert_eq!(
            &baseline.log,
            &candidate.log,
            "event stream differs at {} workers",
            workers
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_uniform_equals_the_reference_exactly(
        n in 2usize..400,
        k in 1u32..8,
        seed in any::<u64>(),
        flat in any::<bool>(),
    ) {
        let backend = if flat { Backend::Flat } else { Backend::BTree };
        let spec = reference::run_uniform(n, k, seed, backend);
        let fast = run_fast(FastRumorProtocol::uniform(n, k), seed, 1);
        assert_fast_matches_reference(&fast, &spec)?;
        assert_worker_invariant(&FastRumorProtocol::uniform(n, k), seed)?;
    }

    #[test]
    fn fast_scale_free_equals_the_reference_exactly(
        n in 10usize..300,
        m in 1usize..3,
        graph_seed in 0u64..1000,
        k in 1u32..8,
        seed in any::<u64>(),
        flat in any::<bool>(),
    ) {
        let backend = if flat { Backend::Flat } else { Backend::BTree };
        let graph = DegreeGraph::scale_free(n, m, graph_seed);
        let spec = reference::run_scale_free(&graph, k, seed, backend);
        let fast = run_fast(FastRumorProtocol::scale_free(&graph, k), seed, 1);
        assert_fast_matches_reference(&fast, &spec)?;
        assert_worker_invariant(&FastRumorProtocol::scale_free(&graph, k), seed)?;
    }
}

/// Streaming aggregation composes with the fast path identically at any
/// worker count: the whole [`RunAggregate`](epidemic_trace::RunAggregate)
/// — delay histogram, SIR trajectory, totals — is a pure function of the
/// seed.
#[test]
fn aggregates_are_worker_count_invariant() {
    let n = 2000;
    let graph = DegreeGraph::scale_free(n, 2, 1987);
    let run = |workers: usize, scale_free: bool| {
        let mut protocol = if scale_free {
            FastRumorProtocol::scale_free(&graph, 4)
        } else {
            FastRumorProtocol::uniform(n, 4)
        };
        let mut obs = AggregateObserver::new();
        ActiveCycleEngine::new()
            .workers(workers)
            .max_cycles(100_000)
            .run(&mut protocol, 42, &mut obs);
        obs.finish()
    };
    for scale_free in [false, true] {
        let sequential = run(1, scale_free);
        for workers in [2usize, 8] {
            assert_eq!(
                sequential,
                run(workers, scale_free),
                "aggregate differs at {workers} workers (scale_free={scale_free})"
            );
        }
    }
}
