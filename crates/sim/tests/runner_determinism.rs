//! The [`TrialRunner`] contract: aggregated multi-trial results are
//! bit-identical no matter how many worker threads execute the fan-out.
//! One mixing-table cell (Table 1's push/feedback/counter protocol) and
//! one spatial Table 4 cell (anti-entropy on a grid under Qs^-2) are
//! exercised at one thread and at the machine's full parallelism.

use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_net::{topologies, Spatial};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::runner::TrialRunner;
use epidemic_sim::spatial_ae::AntiEntropySim;

fn full_parallelism() -> usize {
    // At least 4 workers so the fan-out is exercised even on small CI
    // machines (the runner allows oversubscription).
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .max(4)
}

#[test]
fn mixing_table_cell_is_thread_count_invariant() {
    // Table 1 cell: (feedback, counter k = 2, push) at a reduced n.
    let cfg = RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    );
    let epidemic = RumorEpidemic::new(cfg);
    let trials = 16;
    let sequential = epidemic.run_trials(TrialRunner::new().threads(1), 200, trials, 42);
    let parallel = epidemic.run_trials(
        TrialRunner::new().threads(full_parallelism()),
        200,
        trials,
        42,
    );
    assert_eq!(sequential, parallel, "results must not depend on threads");
    // And both must equal a plain sequential loop with the same seeds.
    let reference: Vec<_> = (0..trials).map(|t| epidemic.run(200, 42 + t)).collect();
    assert_eq!(sequential, reference);
}

#[test]
fn spatial_table4_cell_is_thread_count_invariant() {
    // Table 4 cell: push-pull anti-entropy on a grid under Qs^-2.
    let topo = topologies::grid(&[8, 8]);
    let sim = AntiEntropySim::new(&topo, Spatial::QsPower { a: 2.0 });
    let trials = 8;
    let origin = Some(topo.sites()[0]);
    let one = sim.run_trials(TrialRunner::new().threads(1), trials, 7, origin);
    let many = sim.run_trials(
        TrialRunner::new().threads(full_parallelism()),
        trials,
        7,
        origin,
    );
    for (a, b) in one.iter().zip(&many) {
        assert_eq!(a.t_last, b.t_last);
        assert_eq!(a.t_ave, b.t_ave);
        assert_eq!(a.compare_traffic, b.compare_traffic);
        assert_eq!(a.update_traffic, b.update_traffic);
    }
    let reference: Vec<_> = (0..trials).map(|t| sim.run(7 + t, origin)).collect();
    for (a, b) in one.iter().zip(&reference) {
        assert_eq!(a.t_last, b.t_last);
        assert_eq!(a.compare_traffic, b.compare_traffic);
    }
}
