//! Equivalence pins for the scenario subsystem's engine lowering.
//!
//! Two families:
//!
//! * **Churn delegation is RNG-identical.** `ChurnedAntiEntropySim::run`
//!   now lowers through `ScenarioEngine`; this file carries a verbatim
//!   copy of the hand-rolled protocol it replaced and asserts the full
//!   `ChurnRunResult` (t_last, completeness, observed down fraction) is
//!   *exactly* equal across seeds and churn regimes — the legacy-field
//!   regression test for the stats rerouting.
//!
//! * **An empty fault timeline is the plain engine.** A scenario whose
//!   only event is the cycle-0 injection, running one rumor protocol,
//!   reproduces `RumorEpidemic` (sequential-contact semantics) exactly:
//!   same cycle count, residue and per-site traffic for every direction.

use epidemic_core::rumor::{Feedback, Removal, RumorConfig};
use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_net::{topologies, PartnerSampler, Routes, Spatial, Topology};
use epidemic_sim::engine::{ContactStats, CycleEngine, EpidemicProtocol, SpatialPartners};
use epidemic_sim::failures::{Churn, ChurnRunResult, ChurnedAntiEntropySim};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::scenario::{FaultEvent, FaultKind, Scenario, ScenarioEngine, StopRule};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

// ---------------------------------------------------------------------------
// Verbatim copy of the pre-refactor churned anti-entropy driver.
// ---------------------------------------------------------------------------

const KEY: u32 = 0;

fn pair_mut<T>(slice: &mut [T], i: usize, j: usize) -> (&mut T, &mut T) {
    assert!(i != j);
    if i < j {
        let (a, b) = slice.split_at_mut(j);
        (&mut a[i], &mut b[0])
    } else {
        let (a, b) = slice.split_at_mut(i);
        (&mut b[0], &mut a[j])
    }
}

struct LegacyChurnedProtocol {
    exchange: AntiEntropy,
    churn: Churn,
    replicas: Vec<Replica<u32, u32>>,
    up: Vec<bool>,
    have: Vec<bool>,
    have_count: usize,
    down_cycles: u64,
    scratch: ExchangeScratch<u32, u32>,
}

impl EpidemicProtocol for LegacyChurnedProtocol {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        self.have_count == self.replicas.len()
    }

    fn begin_cycle(&mut self, _cycle: u32, rng: &mut StdRng) {
        for status in self.up.iter_mut() {
            if *status {
                if rng.random::<f64>() < self.churn.fail {
                    *status = false;
                }
            } else if rng.random::<f64>() < self.churn.recover {
                *status = true;
            }
        }
        self.down_cycles += self.up.iter().filter(|&&u| !u).count() as u64;
    }

    fn initiates(&self, i: usize) -> bool {
        self.up[i]
    }

    fn admits(&self, j: usize) -> bool {
        self.up[j]
    }

    fn contact(&mut self, _cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let (a, b) = pair_mut(&mut self.replicas, i, j);
        let stats = self.exchange.exchange_with(a, b, &mut self.scratch);
        let flowed = stats.update_flowed();
        if flowed {
            for idx in [i, j] {
                if !self.have[idx] && self.replicas[idx].db().entry(&KEY).is_some() {
                    self.have[idx] = true;
                    self.have_count += 1;
                }
            }
        }
        ContactStats {
            sent: u64::from(flowed),
            useful: u64::from(flowed),
        }
    }
}

fn legacy_churn_run(
    topology: &Topology,
    spatial: Spatial,
    churn: Churn,
    seed: u64,
) -> ChurnRunResult {
    let routes = Routes::compute(topology);
    let sampler = PartnerSampler::new(topology, &routes, spatial);
    let mut rng = StdRng::seed_from_u64(seed);
    let sites = topology.sites();
    let n = sites.len();
    let mut replicas: Vec<Replica<u32, u32>> = sites.iter().map(|&s| Replica::new(s)).collect();
    let origin = *sites.choose(&mut rng).expect("sites");
    let origin_idx = sites.binary_search(&origin).expect("site exists");
    replicas[origin_idx].client_update(KEY, 1);
    replicas[origin_idx].hot_mut().clear();
    let mut have = vec![false; n];
    have[origin_idx] = true;

    let mut protocol = LegacyChurnedProtocol {
        exchange: AntiEntropy::new(Direction::PushPull, Comparison::Full),
        churn,
        replicas,
        up: vec![true; n],
        have,
        have_count: 1,
        down_cycles: 0,
        scratch: ExchangeScratch::new(),
    };
    let report = CycleEngine::new().max_cycles(50_000).run(
        &mut protocol,
        &SpatialPartners::new(sites, &sampler),
        &mut rng,
        &mut (),
    );

    let cycle = report.cycles;
    ChurnRunResult {
        t_last: cycle,
        complete: protocol.have_count == n,
        observed_down_fraction: if cycle == 0 {
            0.0
        } else {
            protocol.down_cycles as f64 / (f64::from(cycle) * n as f64)
        },
    }
}

#[test]
fn scenario_lowering_matches_legacy_churn_driver_exactly() {
    let cases = [
        (
            topologies::grid(&[6, 6]),
            Spatial::Uniform,
            Churn {
                fail: 0.1,
                recover: 0.2,
            },
        ),
        (
            topologies::grid(&[4, 5]),
            Spatial::QsPower { a: 2.0 },
            Churn {
                fail: 0.05,
                recover: 0.5,
            },
        ),
        (
            topologies::ring(12),
            Spatial::Uniform,
            Churn {
                fail: 0.0,
                recover: 1.0,
            },
        ),
    ];
    for (topo, spatial, churn) in cases {
        let sim = ChurnedAntiEntropySim::new(&topo, spatial, churn);
        for seed in 0..8 {
            let legacy = legacy_churn_run(&topo, spatial, churn, seed);
            let new = sim.run(seed, None);
            assert_eq!(
                new, legacy,
                "churn lowering diverged (seed {seed}, {churn:?})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Empty fault timeline ≡ plain engine, per rumor direction.
// ---------------------------------------------------------------------------

fn rumor_scenario(n: usize, cfg: RumorConfig) -> Scenario {
    let mut spec = Scenario::new("diff", n);
    spec.protocol.rumor = Some(cfg);
    spec.events = vec![FaultEvent {
        cycle: 0,
        kind: FaultKind::Update {
            site: Some(0),
            count: 1,
        },
    }];
    spec.until = StopRule::Quiescent;
    spec.max_cycles = 100_000;
    spec
}

#[test]
fn empty_timeline_scenario_matches_plain_rumor_engine() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
        let engine = ScenarioEngine::new(rumor_scenario(128, cfg)).expect("valid spec");
        for seed in 0..6 {
            let plain = RumorEpidemic::new(cfg).synchronous(false).run(128, seed);
            let report = engine.run(seed);
            assert_eq!(report.cycles, plain.cycles, "{direction:?} seed {seed}");
            assert_eq!(report.residue, plain.residue, "{direction:?} seed {seed}");
            assert_eq!(
                report.traffic_per_site, plain.traffic,
                "{direction:?} seed {seed}"
            );
        }
    }
}

#[test]
fn empty_timeline_scenario_matches_blind_coin_variant_too() {
    // A second protocol point in the differential: blind/coin removal has
    // a different RNG profile inside contacts (a coin flip per contact).
    let cfg = RumorConfig::new(Direction::Push, Feedback::Blind, Removal::Coin { k: 3 });
    let engine = ScenarioEngine::new(rumor_scenario(96, cfg)).expect("valid spec");
    for seed in 0..6 {
        let plain = RumorEpidemic::new(cfg).synchronous(false).run(96, seed);
        let report = engine.run(seed);
        assert_eq!(report.cycles, plain.cycles, "seed {seed}");
        assert_eq!(report.residue, plain.residue, "seed {seed}");
        assert_eq!(report.traffic_per_site, plain.traffic, "seed {seed}");
    }
}
