//! Property tests for the `.scenario` grammar: `parse(render(spec))`
//! equals the original spec for arbitrary valid specs (floats included —
//! Rust's shortest-representation `Display` round-trips exactly), the
//! parser never panics on arbitrary input, and malformed input reports
//! the offending line.

use epidemic_core::rumor::{Feedback, Removal, RumorConfig};
use epidemic_core::{Direction, MailConfig, Redistribution};
use epidemic_sim::scenario::{
    AntiEntropySpec, FaultEvent, FaultKind, Scenario, SiteSet, SpatialSpec, StopRule, TopologySpec,
    Workload, WorkloadMix,
};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// `Option`-valued strategy (the vendored proptest has no `option::of`).
fn opt<S>(strategy: S) -> BoxedStrategy<Option<S::Value>>
where
    S: Strategy + 'static,
    S::Value: Clone + 'static,
{
    prop_oneof![Just(None), strategy.prop_map(Some)].boxed()
}

/// Probabilities drawn from a hundredth grid: representative decimals
/// whose `Display` output (`0.07`, `1`, …) must re-parse to identical
/// bits.
fn prob() -> impl Strategy<Value = f64> {
    (0u32..=100).prop_map(|p| f64::from(p) / 100.0)
}

fn spatial() -> impl Strategy<Value = SpatialSpec> {
    prop_oneof![
        Just(SpatialSpec::Uniform),
        (1u32..=40).prop_map(|a| SpatialSpec::QsPower {
            a: f64::from(a) / 10.0
        }),
    ]
}

/// Topology together with a consistent site count (grid dims must cover
/// the sites exactly; rings need at least three).
fn topology_and_sites() -> impl Strategy<Value = (TopologySpec, usize)> {
    prop_oneof![
        (2usize..=64).prop_map(|n| (TopologySpec::Uniform, n)),
        (1usize..=6, 2usize..=6, spatial()).prop_map(|(rows, cols, spatial)| {
            (
                TopologySpec::Grid {
                    rows,
                    cols,
                    spatial,
                },
                rows * cols,
            )
        }),
        (3usize..=32, spatial()).prop_map(|(n, spatial)| (TopologySpec::Ring { spatial }, n)),
    ]
}

fn rumor_config() -> impl Strategy<Value = RumorConfig> {
    (
        0u8..3,
        any::<bool>(),
        (1u32..=6, any::<bool>()),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(direction, feedback, (k, coin), reset_on_useful, minimization)| RumorConfig {
                direction: match direction {
                    0 => Direction::Push,
                    1 => Direction::Pull,
                    _ => Direction::PushPull,
                },
                feedback: if feedback {
                    Feedback::Feedback
                } else {
                    Feedback::Blind
                },
                removal: if coin {
                    Removal::Coin { k }
                } else {
                    Removal::Counter { k }
                },
                reset_on_useful,
                minimization,
            },
        )
}

fn site_set(n: usize) -> BoxedStrategy<SiteSet> {
    prop_oneof![
        (0..n).prop_map(SiteSet::Site),
        (0..n).prop_flat_map(move |from| {
            (0..=n - from).prop_map(move |count| SiteSet::Span { from, count })
        }),
        (0..=n).prop_map(SiteSet::Last),
        prob().prop_map(SiteSet::Fraction),
        Just(SiteSet::All),
    ]
    .boxed()
}

fn fault_kind(n: usize) -> BoxedStrategy<FaultKind> {
    let retention = u32::try_from(n - 1).expect("site count fits u32");
    prop_oneof![
        (opt(0..n), 1u32..=20).prop_map(|(site, count)| FaultKind::Update { site, count }),
        (0..n, 0u32..=30, 0..=retention).prop_map(|(site, key, retention)| FaultKind::Delete {
            site,
            key,
            retention
        }),
        site_set(n).prop_map(FaultKind::Crash),
        site_set(n).prop_map(FaultKind::Recover),
        (prob(), prob()).prop_map(|(fail, recover)| FaultKind::Churn { fail, recover }),
        Just(FaultKind::ChurnStop),
        (2..=n).prop_map(FaultKind::Partition),
        Just(FaultKind::Heal),
        prob().prop_map(FaultKind::Loss),
        Just(FaultKind::LossEnd),
        (0u64..=1_000, 0u64..=100_000).prop_map(|(tau1, tau2)| FaultKind::Gc { tau1, tau2 }),
        (0..n, 0u64..=500).prop_map(|(site, offset)| FaultKind::Skew { site, offset }),
    ]
    .boxed()
}

fn anti_entropy() -> impl Strategy<Value = AntiEntropySpec> {
    (1u32..=10, 0u32..=50, 0u8..3).prop_map(|(every, from, r)| AntiEntropySpec {
        every,
        from,
        redistribution: match r {
            0 => Redistribution::None,
            1 => Redistribution::Rumor,
            _ => Redistribution::Mail,
        },
    })
}

fn mail() -> impl Strategy<Value = MailConfig> {
    (prob(), 1usize..=500).prop_map(|(loss_probability, queue_capacity)| MailConfig {
        loss_probability,
        queue_capacity,
    })
}

fn workload(sites: usize) -> impl Strategy<Value = Workload> {
    let max_retention = u32::try_from(sites - 1).expect("site count fits u32");
    (
        0u32..=50,
        opt(1u64..=200),
        0..=max_retention,
        (1u32..=10, 0u32..=10, 0u32..=10),
    )
        .prop_map(
            |(rate, budget, retention, (update, delete, read))| Workload {
                rate: f64::from(rate) / 10.0,
                budget,
                retention,
                mix: WorkloadMix {
                    update,
                    delete,
                    read,
                },
            },
        )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (topology_and_sites(), "[a-z][a-z0-9-]{0,15}").prop_flat_map(|((topology, sites), name)| {
        let events = prop::collection::vec(
            (0u32..=200, fault_kind(sites)).prop_map(|(cycle, kind)| FaultEvent { cycle, kind }),
            0..6,
        );
        let contact = prop_oneof![
            Just((None, None)),
            rumor_config().prop_map(|cfg| (Some(cfg), None)),
            (1usize..=8).prop_map(|batch| (None, Some(batch))),
        ];
        (
            events,
            contact,
            (opt(anti_entropy()), opt(mail())),
            workload(sites),
            0u8..5,
            1u32..=100_000,
        )
            .prop_map(
                move |(events, (rumor, peel_back), (mut ae, mail), workload, until, max_cycles)| {
                    let mut spec = Scenario::new(name.clone(), sites);
                    spec.topology = topology;
                    // Repair the handful of cross-field rules validate()
                    // enforces, so every generated spec is valid.
                    if let Some(ae) = &mut ae {
                        if ae.redistribution == Redistribution::Mail && mail.is_none() {
                            ae.redistribution = Redistribution::None;
                        }
                    }
                    spec.protocol.anti_entropy = ae;
                    spec.protocol.rumor = rumor;
                    spec.protocol.peel_back = peel_back;
                    spec.protocol.mail = mail;
                    spec.workload = workload;
                    spec.events = events;
                    let has_delete = workload.mix.delete > 0
                        || spec
                            .events
                            .iter()
                            .any(|e| matches!(e.kind, FaultKind::Delete { .. }));
                    spec.until = match until {
                        0 => StopRule::Converged,
                        1 => StopRule::Coverage,
                        2 if rumor.is_some() => StopRule::Quiescent,
                        3 if has_delete => StopRule::Cancelled,
                        _ => StopRule::Bound,
                    };
                    spec.max_cycles = max_cycles;
                    spec
                },
            )
    })
}

proptest! {
    /// The tentpole grammar property: rendering is the exact inverse of
    /// parsing for every valid spec.
    #[test]
    fn parse_render_round_trips(spec in scenario()) {
        prop_assert!(spec.validate().is_ok(), "generator produced invalid spec");
        let rendered = spec.render();
        let reparsed = Scenario::parse(&rendered)
            .map_err(|e| proptest::test_runner::TestCaseError::fail(
                format!("{e}\n--- rendered ---\n{rendered}")
            ))?;
        prop_assert_eq!(reparsed, spec);
    }

    /// The parser is total: arbitrary text yields `Ok` or a structured
    /// error, never a panic.
    #[test]
    fn parser_never_panics(text in "[ -~\n\t]{0,60}") {
        let _ = Scenario::parse(&text);
    }

    /// Corrupting any single line of a canonical rendering either still
    /// parses or reports that very line (header-dependency failures are
    /// whole-file errors, line 0).
    #[test]
    fn errors_carry_the_offending_line(spec in scenario(), garbage in "[a-z]{1,8}") {
        let rendered = spec.render();
        let lines: Vec<&str> = rendered.lines().collect();
        for corrupt_at in 0..lines.len() {
            let mut mutated: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
            mutated[corrupt_at] = format!("{garbage}-bogus");
            let text = mutated.join("\n");
            if let Err(e) = Scenario::parse(&text) {
                prop_assert!(
                    e.line == corrupt_at + 1 || e.line == 0,
                    "error line {} for corruption at {} ({e})",
                    e.line,
                    corrupt_at + 1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic malformed-input cases: exact error surfaces.
// ---------------------------------------------------------------------------

#[test]
fn missing_header_directives_are_whole_file_errors() {
    let e = Scenario::parse("sites 4\n").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("scenario"), "{e}");

    let e = Scenario::parse("scenario x\n").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("sites"), "{e}");
}

#[test]
fn unknown_directive_reports_its_line() {
    let e = Scenario::parse("scenario x\nsites 4\nfrobnicate 3\n").unwrap_err();
    assert_eq!(e.line, 3);
    assert!(e.message.contains("frobnicate"), "{e}");
}

#[test]
fn bad_numbers_and_trailing_tokens_are_rejected() {
    let e = Scenario::parse("scenario x\nsites many\n").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.message.contains("site count"), "{e}");

    let e = Scenario::parse("scenario x\nsites 4\nuntil bound extra\n").unwrap_err();
    assert_eq!(e.line, 3);
    assert!(e.message.contains("trailing"), "{e}");
}

#[test]
fn validation_failures_surface_after_parsing() {
    // Grid dims that don't cover the site count: syntactically fine,
    // semantically rejected (whole-file error).
    let e = Scenario::parse("scenario x\nsites 5\ntopology grid 2 2 uniform\n").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("grid"), "{e}");

    // Mutually exclusive contact protocols.
    let e = Scenario::parse("scenario x\nsites 4\nrumor push feedback counter 2\npeel-back 3\n")
        .unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("mutually exclusive"), "{e}");

    // Probabilities outside [0, 1].
    let e = Scenario::parse("scenario x\nsites 4\nat 0 loss 1.5\n").unwrap_err();
    assert_eq!(e.line, 0);
    assert!(e.message.contains("probability"), "{e}");
}

#[test]
fn comments_and_blank_lines_are_ignored() {
    let spec = Scenario::parse(
        "# header comment\n\nscenario x # trailing comment\nsites 4\n\n# middle\nuntil bound\n",
    )
    .expect("comments parse");
    assert_eq!(spec.name, "x");
    assert_eq!(spec.sites, 4);
    assert_eq!(spec.until, StopRule::Bound);
}
