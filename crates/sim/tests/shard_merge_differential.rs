//! Differential property test for the shard-merge engine, in the style of
//! `crates/core/tests/exchange_reference.rs`.
//!
//! A minimal database-bearing anti-entropy protocol is driven through both
//! engines over random update histories. The engines inhabit different RNG
//! universes (different partner sequences, different cycle counts), so the
//! differential claims are the ones that must hold *regardless* of the
//! contact schedule:
//!
//! * both engines converge, and both converge to the **same** database —
//!   the per-key timestamp maximum over the injected history, computed
//!   here by an independent reference merge;
//! * each engine's aggregate totals equal the contact-by-contact
//!   accumulation over its own observer event stream (no lost or
//!   double-counted contacts across the shard merge);
//! * the sharded engine is byte-identical across worker counts, report
//!   and event stream both, for every random configuration tried.

use std::collections::BTreeMap;

use epidemic_core::{AntiEntropy, Comparison, Direction, ExchangeScratch, Replica};
use epidemic_db::{Entry, SiteId};
use epidemic_sim::engine::{
    ContactPair, ContactStats, CycleEngine, EpidemicProtocol, Observer, ShardableProtocol,
    ShardedCycleEngine, UniformPartners,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Rep = Replica<u8, u32>;

/// One injected client update: which site, which key, which value.
type Update = (usize, u8, u32);

fn db_image(r: &Rep) -> Vec<(u8, Entry<u32>)> {
    r.db().iter().map(|(k, e)| (*k, e.clone())).collect()
}

/// Full-database anti-entropy over plain replicas — no traffic charging,
/// no receive log, just the databases themselves. Runs until every site
/// holds the same database.
struct DiffAe {
    exchange: AntiEntropy,
    replicas: Vec<Rep>,
    scratch: ExchangeScratch<u8, u32>,
}

impl DiffAe {
    fn new(n: usize, direction: Direction, updates: &[Update]) -> Self {
        let mut replicas: Vec<Rep> = (0..n)
            .map(|i| Replica::new(SiteId::new(u32::try_from(i).expect("small site index"))))
            .collect();
        for &(site, key, value) in updates {
            replicas[site % n].client_update(key, value);
        }
        DiffAe {
            exchange: AntiEntropy::new(direction, Comparison::Full),
            replicas,
            scratch: ExchangeScratch::new(),
        }
    }

    fn converged(&self) -> bool {
        let first = db_image(&self.replicas[0]);
        self.replicas.iter().skip(1).all(|r| db_image(r) == first)
    }
}

fn split_pair(replicas: &mut [Rep], i: usize, j: usize) -> (&mut Rep, &mut Rep) {
    assert_ne!(i, j, "a site cannot exchange with itself");
    if i < j {
        let (lo, hi) = replicas.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

fn stats_of(stats: &epidemic_core::ExchangeStats) -> ContactStats {
    ContactStats {
        sent: stats.total_sent() as u64,
        useful: u64::from(stats.update_flowed()),
    }
}

impl EpidemicProtocol for DiffAe {
    fn site_count(&self) -> usize {
        self.replicas.len()
    }

    fn finished(&self, _cycle: u32, _active: &[usize]) -> bool {
        self.converged()
    }

    fn contact(&mut self, _cycle: u32, i: usize, j: usize, _rng: &mut StdRng) -> ContactStats {
        let (a, b) = split_pair(&mut self.replicas, i, j);
        let stats = self.exchange.exchange_with(a, b, &mut self.scratch);
        stats_of(&stats)
    }
}

impl ShardableProtocol for DiffAe {
    type Site = Rep;
    type Ctx<'p>
        = AntiEntropy
    where
        Self: 'p;
    type Shard = ExchangeScratch<u8, u32>;

    fn make_shard(&self) -> Self::Shard {
        ExchangeScratch::new()
    }

    fn split(&mut self) -> (AntiEntropy, &mut [Rep]) {
        (self.exchange, &mut self.replicas)
    }

    fn contact_sharded(
        ctx: &AntiEntropy,
        shard: &mut Self::Shard,
        _cycle: u32,
        pair: ContactPair<'_, Rep>,
        _rng: &mut StdRng,
    ) -> ContactStats {
        let stats = ctx.exchange_with(pair.a, pair.b, shard);
        stats_of(&stats)
    }

    fn absorb(&mut self, _shard: &mut Self::Shard) {}
}

/// The database every site must converge to: per key, the entry with the
/// greatest timestamp over the whole injected history. Independent of any
/// engine — computed straight off the initial replica states.
fn reference_merge(initial: &DiffAe) -> Vec<(u8, Entry<u32>)> {
    let mut best: BTreeMap<u8, Entry<u32>> = BTreeMap::new();
    for r in &initial.replicas {
        for (k, e) in r.db().iter() {
            match best.get(k) {
                Some(cur) if cur.timestamp() >= e.timestamp() => {}
                _ => {
                    best.insert(*k, e.clone());
                }
            }
        }
    }
    best.into_iter().collect()
}

#[derive(Default, PartialEq, Eq, Debug)]
struct EventLog {
    events: Vec<(u32, usize, usize, u64, u64)>,
}

impl<P: ?Sized> Observer<P> for EventLog {
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.events.push((cycle, i, j, stats.sent, stats.useful));
    }
}

/// Totals accumulated the obvious way from the event stream; must equal
/// the engine's own `EngineReport` totals.
fn accumulate(log: &EventLog) -> (u64, u64, u64, u64) {
    let contacts = log.events.len() as u64;
    let sent = log.events.iter().map(|e| e.3).sum();
    let useful = log.events.iter().map(|e| e.4).sum();
    let fruitless = log.events.iter().filter(|e| e.4 == 0).count() as u64;
    (contacts, sent, useful, fruitless)
}

const MAX_CYCLES: u32 = 2_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_and_sequential_converge_to_the_reference_merge(
        n in 2usize..10,
        dir in 0u8..3,
        updates in prop::collection::vec((0usize..10, 0u8..8, any::<u32>()), 1..20),
        seed in any::<u64>(),
        shards in 1usize..6,
    ) {
        let direction = match dir {
            0 => Direction::Push,
            1 => Direction::Pull,
            _ => Direction::PushPull,
        };
        let expected = reference_merge(&DiffAe::new(n, direction, &updates));
        let policy = UniformPartners::new(n);

        // Sequential engine.
        let mut seq = DiffAe::new(n, direction, &updates);
        let mut seq_log = EventLog::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let seq_report = CycleEngine::new()
            .max_cycles(MAX_CYCLES)
            .run(&mut seq, &policy, &mut rng, &mut seq_log);
        prop_assert!(seq_report.cycles < MAX_CYCLES, "sequential run must converge");
        for r in &seq.replicas {
            prop_assert_eq!(db_image(r), expected.clone(), "sequential converged database");
        }
        let (contacts, sent, useful, fruitless) = accumulate(&seq_log);
        prop_assert_eq!(seq_report.totals.contacts, contacts);
        prop_assert_eq!(seq_report.totals.sent, sent);
        prop_assert_eq!(seq_report.totals.useful, useful);
        prop_assert_eq!(seq_report.totals.fruitless, fruitless);

        // Sharded engine, two worker counts.
        let mut runs = Vec::new();
        for workers in [1usize, 2] {
            let mut sharded = DiffAe::new(n, direction, &updates);
            let mut log = EventLog::default();
            let report = ShardedCycleEngine::new(shards)
                .workers(workers)
                .max_cycles(MAX_CYCLES)
                .run(&mut sharded, &policy, seed, &mut log);
            prop_assert!(report.cycles < MAX_CYCLES, "sharded run must converge");
            for r in &sharded.replicas {
                prop_assert_eq!(db_image(r), expected.clone(), "sharded converged database");
            }
            let (contacts, sent, useful, fruitless) = accumulate(&log);
            prop_assert_eq!(report.totals.contacts, contacts);
            prop_assert_eq!(report.totals.sent, sent);
            prop_assert_eq!(report.totals.useful, useful);
            prop_assert_eq!(report.totals.fruitless, fruitless);
            runs.push((report, log));
        }
        let (ref report_1, ref log_1) = runs[0];
        let (ref report_2, ref log_2) = runs[1];
        prop_assert_eq!(report_1, report_2, "sharded report differs across workers");
        prop_assert_eq!(log_1, log_2, "sharded event stream differs across workers");
    }
}
