//! Determinism and agreement suite for the shard-parallel engine.
//!
//! The sharded engine is a *new RNG universe*: its outputs are a pure
//! function of `(protocol, policy, seed, shards)` and legitimately differ
//! from the sequential engine's (whose outputs the golden tables and
//! `engine_equivalence.txt` pin). What this suite pins instead:
//!
//! 1. **Worker invariance, to the byte** — every shipped sharded driver
//!    produces identical results *and an identical per-contact event
//!    stream* at 1, 2 and 8 workers (1 worker is the sequential-reference
//!    mode: tasks run inline on the caller's thread).
//! 2. **Statistical agreement** — sharded and sequential runs simulate
//!    the same epidemic, so their trial means must agree within
//!    self-calibrated Monte-Carlo error bands (5 standard errors).
//! 3. **Invariant cleanliness** — the `InvariantObserver` rule set holds
//!    on sharded runs exactly as on sequential ones.
//!
//! See DESIGN.md §Deterministic parallel cycle for the two-phase
//! roster/merge construction that makes (1) hold by design rather than
//! by scheduling luck.

use epidemic_core::{Comparison, Direction, Feedback, Removal, RumorConfig};
use epidemic_net::{topologies, Spatial};
use epidemic_sim::engine::{ContactStats, InvariantObserver, Observer};
use epidemic_sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemic_sim::spatial_ae::AntiEntropySim;
use epidemic_sim::spatial_rumor::SpatialRumorSim;
use epidemic_sim::spatial_steady::{SpatialSteadyConfig, SpatialSteadySim};

const WORKERS: [usize; 3] = [1, 2, 8];
const SHARDS: usize = 4;

/// Records every contact the engine reports, in delivery order. Two runs
/// are byte-identical iff their results *and* these logs match.
#[derive(Default, PartialEq, Eq, Debug)]
struct EventLog {
    events: Vec<(u32, usize, usize, u64, u64)>,
}

impl<P: ?Sized> Observer<P> for EventLog {
    fn on_contact(&mut self, cycle: u32, i: usize, j: usize, stats: &ContactStats) {
        self.events.push((cycle, i, j, stats.sent, stats.useful));
    }
}

/// Runs `run(workers)` at every worker count and asserts the `{:?}`
/// rendering (round-trip exact for `f64`) never changes.
fn assert_worker_invariant<R: std::fmt::Debug>(tag: &str, run: impl Fn(usize) -> (R, EventLog)) {
    let (reference, reference_log) = run(WORKERS[0]);
    let reference = format!("{reference:?}");
    assert!(
        !reference_log.events.is_empty(),
        "{tag}: a run with no contacts proves nothing"
    );
    for workers in &WORKERS[1..] {
        let (result, log) = run(*workers);
        assert_eq!(
            format!("{result:?}"),
            reference,
            "{tag}: result differs at {workers} workers"
        );
        assert_eq!(
            log, reference_log,
            "{tag}: event stream differs at {workers} workers"
        );
    }
}

#[test]
fn mixing_rumor_is_worker_invariant() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        for synchronous in [true, false] {
            let epidemic = RumorEpidemic::new(RumorConfig::new(
                direction,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ))
            .synchronous(synchronous);
            for seed in 0..3u64 {
                assert_worker_invariant(
                    &format!("rumor/{direction:?}/sync={synchronous}/seed={seed}"),
                    |workers| {
                        let mut log = EventLog::default();
                        let r = epidemic.run_sharded_observed(48, seed, SHARDS, workers, &mut log);
                        (r, log)
                    },
                );
            }
        }
    }
}

#[test]
fn mixing_anti_entropy_is_worker_invariant() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let epidemic = AntiEntropyEpidemic::new(direction);
        for seed in 0..3u64 {
            assert_worker_invariant(&format!("ae/{direction:?}/seed={seed}"), |workers| {
                let mut log = EventLog::default();
                let r = epidemic.run_sharded_observed(48, seed, SHARDS, workers, &mut log);
                (r, log)
            });
        }
    }
}

#[test]
fn spatial_anti_entropy_is_worker_invariant() {
    let grid = topologies::grid(&[4, 4]);
    let ring = topologies::ring(12);
    for (topo_tag, topo) in [("grid4x4", &grid), ("ring12", &ring)] {
        for (sp_tag, spatial) in [
            ("uniform", Spatial::Uniform),
            ("qs2", Spatial::QsPower { a: 2.0 }),
        ] {
            let sim = AntiEntropySim::new(topo, spatial);
            for seed in 0..2u64 {
                assert_worker_invariant(
                    &format!("spatial-ae/{topo_tag}/{sp_tag}/seed={seed}"),
                    |workers| {
                        let mut log = EventLog::default();
                        let r = sim.run_sharded_observed(seed, None, SHARDS, workers, &mut log);
                        (
                            (
                                r.t_last,
                                r.t_ave,
                                r.cycles,
                                r.compare_traffic,
                                r.update_traffic,
                            ),
                            log,
                        )
                    },
                );
            }
        }
    }
}

#[test]
fn spatial_rumor_is_worker_invariant() {
    let ring = topologies::ring(12);
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let cfg = RumorConfig::new(direction, Feedback::Feedback, Removal::Counter { k: 2 });
        let sim = SpatialRumorSim::new(&ring, Spatial::QsPower { a: 1.5 }, cfg);
        for seed in 0..2u64 {
            assert_worker_invariant(
                &format!("spatial-rumor/{direction:?}/seed={seed}"),
                |workers| {
                    let mut log = EventLog::default();
                    let r = sim.run_sharded_observed(seed, None, SHARDS, workers, &mut log);
                    (
                        (
                            r.complete,
                            r.residue,
                            r.t_last,
                            r.t_ave,
                            r.cycles,
                            r.susceptible_sites.clone(),
                            r.compare_traffic.clone(),
                            r.update_traffic.clone(),
                        ),
                        log,
                    )
                },
            );
        }
    }
}

#[test]
fn spatial_steady_is_worker_invariant() {
    let ring = topologies::ring(12);
    let sim = SpatialSteadySim::new(
        &ring,
        Spatial::QsPower { a: 1.5 },
        SpatialSteadyConfig {
            updates_per_cycle: 1.0,
            comparison: Comparison::RecentList { tau: 400 },
            warmup: 4,
            cycles: 8,
        },
    );
    // No observer entry point here: the report itself (per-link traffic
    // included) is the byte-identity witness.
    for seed in 0..2u64 {
        let reference = format!("{:?}", sim.run_sharded(seed, SHARDS, 1));
        for workers in &WORKERS[1..] {
            assert_eq!(
                format!("{:?}", sim.run_sharded(seed, SHARDS, *workers)),
                reference,
                "spatial-steady/seed={seed}: report differs at {workers} workers"
            );
        }
    }
}

#[test]
fn shard_count_defines_the_rng_universe() {
    // The shard count is part of the seed derivation: changing it changes
    // the run (while staying deterministic for each fixed value). This is
    // why `EPIDEMIC_SHARDS` must stay fixed across machines when comparing
    // artifacts — only `EPIDEMIC_THREADS` is free.
    let epidemic = AntiEntropyEpidemic::new(Direction::PushPull);
    let a = epidemic.run_sharded(48, 7, 2, 1);
    let b = epidemic.run_sharded(48, 7, 8, 1);
    let a2 = epidemic.run_sharded(48, 7, 2, 1);
    assert_eq!(format!("{a:?}"), format!("{a2:?}"), "fixed shards: stable");
    assert_ne!(
        format!("{a:?}"),
        format!("{b:?}"),
        "different shard counts draw from different streams"
    );
}

// ---------------------------------------------------------------------
// Statistical agreement: sharded and sequential engines simulate the same
// epidemic, so Monte-Carlo means must agree within sampling error.
// ---------------------------------------------------------------------

/// Asserts `|mean(a) - mean(b)|` is within `5 × stderr` of the pooled
/// samples — a self-calibrating band: no hand-tuned tolerances to rot.
fn assert_means_agree(tag: &str, a: &[f64], b: &[f64]) {
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let var = |xs: &[f64], m: f64| {
        xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
    };
    let (ma, mb) = (mean(a), mean(b));
    let stderr = (var(a, ma) / a.len() as f64 + var(b, mb) / b.len() as f64).sqrt();
    // The epsilon keeps zero-variance metrics (e.g. "always complete")
    // from demanding exact equality of means.
    assert!(
        (ma - mb).abs() <= 5.0 * stderr + 1e-9,
        "{tag}: sequential mean {ma} vs sharded mean {mb} (stderr {stderr})"
    );
}

#[test]
fn rumor_sharded_agrees_with_sequential_statistics() {
    let epidemic = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    ));
    let trials = 60u64;
    let n = 64;
    let sequential: Vec<_> = (0..trials).map(|s| epidemic.run(n, s)).collect();
    let sharded: Vec<_> = (0..trials)
        .map(|s| epidemic.run_sharded(n, s, SHARDS, 2))
        .collect();
    let residue = |rs: &[epidemic_sim::mixing::EpidemicResult]| {
        rs.iter().map(|r| r.residue).collect::<Vec<_>>()
    };
    let traffic = |rs: &[epidemic_sim::mixing::EpidemicResult]| {
        rs.iter().map(|r| r.traffic).collect::<Vec<_>>()
    };
    let t_ave = |rs: &[epidemic_sim::mixing::EpidemicResult]| {
        rs.iter().map(|r| r.t_ave).collect::<Vec<_>>()
    };
    assert_means_agree("rumor residue", &residue(&sequential), &residue(&sharded));
    assert_means_agree("rumor traffic", &traffic(&sequential), &traffic(&sharded));
    assert_means_agree("rumor t_ave", &t_ave(&sequential), &t_ave(&sharded));
}

#[test]
fn anti_entropy_sharded_agrees_with_sequential_statistics() {
    let epidemic = AntiEntropyEpidemic::new(Direction::PushPull);
    let trials = 40u64;
    let cycles = |runs: &[f64]| runs.to_vec();
    let sequential: Vec<f64> = (0..trials)
        .map(|s| f64::from(epidemic.run(64, s).cycles))
        .collect();
    let sharded: Vec<f64> = (0..trials)
        .map(|s| f64::from(epidemic.run_sharded(64, s, SHARDS, 2).cycles))
        .collect();
    assert_means_agree("ae cycles", &cycles(&sequential), &cycles(&sharded));
}

#[test]
fn spatial_steady_sharded_agrees_with_sequential_statistics() {
    let ring = topologies::ring(16);
    let sim = SpatialSteadySim::new(
        &ring,
        Spatial::Uniform,
        SpatialSteadyConfig {
            updates_per_cycle: 1.0,
            comparison: Comparison::RecentList { tau: 400 },
            warmup: 5,
            cycles: 10,
        },
    );
    let trials = 30u64;
    let sequential: Vec<f64> = (0..trials)
        .map(|s| sim.run(s).conversations_per_link_cycle)
        .collect();
    let sharded: Vec<f64> = (0..trials)
        .map(|s| sim.run_sharded(s, SHARDS, 2).conversations_per_link_cycle)
        .collect();
    assert_means_agree("steady conversations", &sequential, &sharded);
}

// ---------------------------------------------------------------------
// Invariant cleanliness on the sharded path.
// ---------------------------------------------------------------------

#[test]
fn sharded_runs_pass_the_invariant_checker() {
    for direction in [Direction::Push, Direction::Pull, Direction::PushPull] {
        let epidemic = RumorEpidemic::new(RumorConfig::new(
            direction,
            Feedback::Feedback,
            Removal::Counter { k: 2 },
        ));
        let mut check = InvariantObserver::new();
        epidemic.run_sharded_observed(48, 11, SHARDS, 8, &mut check);
        assert!(
            check.is_clean(),
            "rumor/{direction:?} sharded run violated invariants: {}",
            check.to_jsonl()
        );
    }
    let ring = topologies::ring(12);
    let sim = AntiEntropySim::new(&ring, Spatial::QsPower { a: 1.5 });
    let mut check = InvariantObserver::new();
    sim.run_sharded_observed(11, None, SHARDS, 8, &mut check);
    assert!(
        check.is_clean(),
        "spatial-ae sharded run violated invariants: {}",
        check.to_jsonl()
    );
}
