//! Streaming run aggregation: bounded-memory analytics over contact
//! streams.
//!
//! [`RunTracer`](crate::RunTracer) records every event verbatim, which is
//! perfect for small runs and differential tests but unusable at
//! megascale (a single n=10⁶ push epidemic makes ~2·10⁷ contacts). The
//! [`AggregatingSink`] consumes the same event stream and folds it into an
//! [`RunAggregate`] whose memory is bounded regardless of run length:
//!
//! * a fixed-bucket [`Histogram`] of per-update propagation delay — the
//!   cycle at which each site first *provably holds* the update, i.e. its
//!   first contact that transferred at least one useful unit (for push
//!   that is the recipient, for pull the initiator, for push-pull both) —
//!   plus the exact maximum;
//! * a per-link traffic matrix, dense while small and first-come
//!   [`LINK_CAP`]-capped with an overflow cell beyond that, so n=10⁶
//!   stays bounded;
//! * per-cycle SIR curves as elementwise sums plus a runs-reaching-cycle
//!   count, so mean curves over trials of different lengths are exact;
//! * the same contact totals a full trace carries.
//!
//! Every part of the state merges deterministically: folding per-trial
//! aggregates in trial order yields byte-identical
//! [`RunAggregate::to_json`] output at any `EPIDEMIC_THREADS`, mirroring
//! the JSONL guarantee of [`RunTracer`](crate::RunTracer). Like the rest
//! of this crate, aggregates carry **no wall-clock fields**.
//!
//! The origin site has no receipt event, so it records one sample at its
//! own first useful contact — a one-in-n bias toward small delays that is
//! irrelevant for n ≥ 100 and keeps the rule uniform (and exactly
//! reproducible by a post-hoc scan of a full JSONL trace, which the
//! differential tests exploit).

use std::collections::BTreeMap;

use crate::json::JsonObject;
use crate::metrics::Histogram;
use crate::record::TraceTotals;
use crate::Sir;

/// Delay-histogram bucket bounds (cycles). Unit-wide up to 16 cycles —
/// where `log₂n + ln n` lands for every n this workspace sweeps short of
/// megascale — then coarsening geometrically to 512.
pub const DELAY_BUCKETS: [f64; 28] = [
    1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 20.0,
    24.0, 28.0, 32.0, 40.0, 48.0, 64.0, 96.0, 128.0, 192.0, 256.0, 512.0,
];

/// Maximum distinct `(from, to)` pairs a [`LinkAggregate`] keeps.
///
/// Admission is first-come: the first `LINK_CAP` distinct pairs seen get
/// cells, traffic on any later *new* pair folds into one overflow cell
/// (traffic on retained pairs always updates them). First-come admission
/// is deterministic under the fixed trial-fold order, unlike
/// eviction-based top-K schemes whose contents depend on interleaving.
pub const LINK_CAP: usize = 4096;

/// Below this many tracked pairs the JSON export lists every cell
/// ("dense for small n"); above it only the `LINK_TOP_K` heaviest.
const LINK_DENSE_EXPORT: usize = 256;

/// Cells exported once the matrix is no longer dense: the top K by
/// `sent` (descending), ties broken by `(from, to)` ascending.
const LINK_TOP_K: usize = 32;

/// Traffic accumulated over one directed site pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkCell {
    /// Contacts over this pair.
    pub contacts: u64,
    /// Units sent over this pair.
    pub sent: u64,
    /// Units that were news to the recipient.
    pub useful: u64,
}

impl LinkCell {
    fn add(&mut self, other: &LinkCell) {
        self.contacts += other.contacts;
        self.sent += other.sent;
        self.useful += other.useful;
    }
}

/// A bounded per-link traffic matrix (see [`LINK_CAP`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkAggregate {
    cells: BTreeMap<(u64, u64), LinkCell>,
    overflow: LinkCell,
}

impl LinkAggregate {
    /// Records one contact over the directed pair `(from, to)`.
    pub fn record(&mut self, from: u64, to: u64, sent: u64, useful: u64) {
        self.record_cell(
            from,
            to,
            &LinkCell {
                contacts: 1,
                sent,
                useful,
            },
        );
    }

    fn record_cell(&mut self, from: u64, to: u64, cell: &LinkCell) {
        if let Some(slot) = self.cells.get_mut(&(from, to)) {
            slot.add(cell);
        } else if self.cells.len() < LINK_CAP {
            self.cells.insert((from, to), *cell);
        } else {
            self.overflow.add(cell);
        }
    }

    /// Folds `other` into `self`; `other`'s cells are admitted in
    /// `(from, to)` order under the same first-come cap.
    pub fn merge(&mut self, other: &LinkAggregate) {
        for (&(from, to), cell) in &other.cells {
            self.record_cell(from, to, cell);
        }
        self.overflow.add(&other.overflow);
    }

    /// Distinct pairs currently tracked.
    pub fn tracked_pairs(&self) -> usize {
        self.cells.len()
    }

    /// Traffic folded into the overflow cell (pairs past the cap).
    pub fn overflow(&self) -> &LinkCell {
        &self.overflow
    }

    /// Grand totals over every recorded contact, tracked or overflowed.
    pub fn totals(&self) -> LinkCell {
        let mut t = self.overflow;
        for cell in self.cells.values() {
            t.add(cell);
        }
        t
    }

    /// The tracked cell for `(from, to)`, if retained.
    pub fn get(&self, from: u64, to: u64) -> Option<&LinkCell> {
        self.cells.get(&(from, to))
    }

    /// Tracked cells in `(from, to)` order.
    pub fn cells(&self) -> impl Iterator<Item = (&(u64, u64), &LinkCell)> + '_ {
        self.cells.iter()
    }

    /// The `k` heaviest tracked cells by `sent` (descending), ties broken
    /// by `(from, to)` ascending.
    pub fn top(&self, k: usize) -> Vec<((u64, u64), LinkCell)> {
        let mut all: Vec<((u64, u64), LinkCell)> =
            self.cells.iter().map(|(&key, &cell)| (key, cell)).collect();
        all.sort_by(|a, b| b.1.sent.cmp(&a.1.sent).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

/// The bounded-memory summary of one or more runs (see the module docs).
///
/// Built by an [`AggregatingSink`] or by [`RunAggregate::merge`]-ing
/// per-trial/per-shard aggregates; serialized by
/// [`RunAggregate::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunAggregate {
    runs: u64,
    sites: u64,
    delay: Histogram,
    delay_max: u64,
    links: LinkAggregate,
    sir_s: Vec<u64>,
    sir_i: Vec<u64>,
    sir_r: Vec<u64>,
    sir_runs: Vec<u64>,
    totals: TraceTotals,
    max_cycle: u64,
}

impl Default for RunAggregate {
    fn default() -> Self {
        RunAggregate {
            runs: 0,
            sites: 0,
            delay: Histogram::new(&DELAY_BUCKETS),
            delay_max: 0,
            links: LinkAggregate::default(),
            sir_s: Vec::new(),
            sir_i: Vec::new(),
            sir_r: Vec::new(),
            sir_runs: Vec::new(),
            totals: TraceTotals::default(),
            max_cycle: 0,
        }
    }
}

impl RunAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        RunAggregate::default()
    }

    /// Runs folded into this aggregate.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Largest site count seen at any run start.
    pub fn sites(&self) -> u64 {
        self.sites
    }

    /// The propagation-delay histogram (cycles to first possession).
    pub fn delay(&self) -> &Histogram {
        &self.delay
    }

    /// Exact maximum recorded delay, in cycles.
    pub fn delay_max(&self) -> u64 {
        self.delay_max
    }

    /// The bounded per-link traffic matrix.
    pub fn links(&self) -> &LinkAggregate {
        &self.links
    }

    /// Contact totals over every folded run.
    pub fn totals(&self) -> TraceTotals {
        self.totals
    }

    /// Highest cycle number any folded run reached.
    pub fn max_cycle(&self) -> u64 {
        self.max_cycle
    }

    /// Summed SIR curves: `(s, i, r, runs_at)` vectors indexed by cycle
    /// (entry 0 is the pre-run state). `runs_at[c]` counts the runs that
    /// reached cycle `c`, so `s[c] / runs_at[c]` is the mean susceptible
    /// count at that cycle over the runs still going.
    pub fn sir_curve(&self) -> (&[u64], &[u64], &[u64], &[u64]) {
        (&self.sir_s, &self.sir_i, &self.sir_r, &self.sir_runs)
    }

    fn record_sir(&mut self, index: usize, sir: Sir) {
        if self.sir_s.len() <= index {
            self.sir_s.resize(index + 1, 0);
            self.sir_i.resize(index + 1, 0);
            self.sir_r.resize(index + 1, 0);
            self.sir_runs.resize(index + 1, 0);
        }
        self.sir_s[index] += sir.susceptible as u64;
        self.sir_i[index] += sir.infective as u64;
        self.sir_r[index] += sir.removed as u64;
        self.sir_runs[index] += 1;
    }

    /// Folds `other` into `self`. Deterministic: merging per-trial
    /// aggregates in trial order yields identical state no matter how the
    /// trials were scheduled.
    ///
    /// # Panics
    ///
    /// Panics if the delay histograms were built over different bounds
    /// (see [`Histogram::merge`]); aggregates built by this module always
    /// share [`DELAY_BUCKETS`].
    pub fn merge(&mut self, other: &RunAggregate) {
        self.runs += other.runs;
        self.sites = self.sites.max(other.sites);
        self.delay.merge(&other.delay);
        self.delay_max = self.delay_max.max(other.delay_max);
        self.links.merge(&other.links);
        if self.sir_s.len() < other.sir_s.len() {
            let len = other.sir_s.len();
            self.sir_s.resize(len, 0);
            self.sir_i.resize(len, 0);
            self.sir_r.resize(len, 0);
            self.sir_runs.resize(len, 0);
        }
        for (idx, (((&s, &i), &r), &n)) in other
            .sir_s
            .iter()
            .zip(&other.sir_i)
            .zip(&other.sir_r)
            .zip(&other.sir_runs)
            .enumerate()
        {
            self.sir_s[idx] += s;
            self.sir_i[idx] += i;
            self.sir_r[idx] += r;
            self.sir_runs[idx] += n;
        }
        self.totals.contacts += other.totals.contacts;
        self.totals.sent += other.totals.sent;
        self.totals.useful += other.totals.useful;
        self.totals.fruitless += other.totals.fruitless;
        self.max_cycle = self.max_cycle.max(other.max_cycle);
    }

    /// Serializes the aggregate as one JSON object. Deterministic by
    /// construction and free of wall-clock fields; the link section lists
    /// every cell while dense and the heaviest `LINK_TOP_K` (plus
    /// totals) beyond `LINK_DENSE_EXPORT` pairs.
    pub fn to_json(&self) -> String {
        let mut delay = JsonObject::new();
        delay
            .field_u64("count", self.delay.count())
            .field_f64("sum", self.delay.sum())
            .field_f64("mean", self.delay.mean())
            .field_f64("p50", self.delay.quantile(0.50))
            .field_f64("p90", self.delay.quantile(0.90))
            .field_f64("p99", self.delay.quantile(0.99))
            .field_u64("max", self.delay_max)
            .field_f64_array("bounds", self.delay.bounds().iter().copied())
            .field_u64_array("buckets", self.delay.bucket_counts().iter().copied());

        let link_totals = self.links.totals();
        let truncated = self.links.tracked_pairs() > LINK_DENSE_EXPORT;
        let exported = if truncated {
            self.links.top(LINK_TOP_K)
        } else {
            self.links
                .cells()
                .map(|(&key, &cell)| (key, cell))
                .collect()
        };
        let cells = crate::json::array_of(exported.iter().map(|((from, to), cell)| {
            let mut o = JsonObject::new();
            o.field_u64("from", *from)
                .field_u64("to", *to)
                .field_u64("contacts", cell.contacts)
                .field_u64("sent", cell.sent)
                .field_u64("useful", cell.useful);
            o.finish()
        }));
        let mut links = JsonObject::new();
        links
            .field_u64("tracked_pairs", self.links.tracked_pairs() as u64)
            .field_bool("truncated", truncated)
            .field_raw("totals", &link_cell_json(&link_totals))
            .field_raw("overflow", &link_cell_json(self.links.overflow()))
            .field_raw("cells", &cells);

        let mut totals = JsonObject::new();
        totals
            .field_u64("contacts", self.totals.contacts)
            .field_u64("sent", self.totals.sent)
            .field_u64("useful", self.totals.useful)
            .field_u64("fruitless", self.totals.fruitless);

        let mut sir = JsonObject::new();
        sir.field_u64("cycles", self.sir_s.len() as u64)
            .field_u64_array("runs", self.sir_runs.iter().copied())
            .field_u64_array("s", self.sir_s.iter().copied())
            .field_u64_array("i", self.sir_i.iter().copied())
            .field_u64_array("r", self.sir_r.iter().copied());

        let mut root = JsonObject::new();
        root.field_u64("runs", self.runs)
            .field_u64("sites", self.sites)
            .field_u64("max_cycle", self.max_cycle)
            .field_raw("totals", &totals.finish())
            .field_raw("delay", &delay.finish())
            .field_raw("links", &links.finish())
            .field_raw("sir", &sir.finish());
        root.finish()
    }
}

fn link_cell_json(cell: &LinkCell) -> String {
    let mut o = JsonObject::new();
    o.field_u64("contacts", cell.contacts)
        .field_u64("sent", cell.sent)
        .field_u64("useful", cell.useful);
    o.finish()
}

/// Folds a contact/cycle event stream into a [`RunAggregate`].
///
/// The event surface mirrors [`RunTracer`](crate::RunTracer): call
/// [`run_start`](AggregatingSink::run_start) once per run, then
/// [`contact`](AggregatingSink::contact) for every contact and
/// [`cycle`](AggregatingSink::cycle) at each cycle end (cycles are
/// numbered from 1; the run-start snapshot is cycle 0). One sink may
/// observe several runs back-to-back — the per-run seen-set resets at
/// each `run_start` while the aggregate keeps accumulating.
#[derive(Debug, Clone, Default)]
pub struct AggregatingSink {
    agg: RunAggregate,
    seen: Vec<bool>,
}

impl AggregatingSink {
    /// A sink with an empty aggregate.
    pub fn new() -> Self {
        AggregatingSink::default()
    }

    /// Begins a run of `sir.total()` sites in the given start state.
    pub fn run_start(&mut self, sir: Sir) {
        let n = sir.total();
        self.seen.clear();
        self.seen.resize(n, false);
        self.agg.runs += 1;
        self.agg.sites = self.agg.sites.max(n as u64);
        self.agg.record_sir(0, sir);
    }

    /// Records one contact: `from` initiated, `to` responded, `sent`
    /// units moved of which `useful` were news. A useful contact marks
    /// both endpoints as holding the update (first mark records the
    /// delay).
    pub fn contact(&mut self, cycle: u32, from: usize, to: usize, sent: u64, useful: u64) {
        self.agg.totals.contacts += 1;
        self.agg.totals.sent += sent;
        self.agg.totals.useful += useful;
        if useful == 0 {
            self.agg.totals.fruitless += 1;
        } else {
            for site in [from, to] {
                if let Some(slot) = self.seen.get_mut(site) {
                    if !*slot {
                        *slot = true;
                        self.agg.delay.observe(f64::from(cycle));
                        self.agg.delay_max = self.agg.delay_max.max(u64::from(cycle));
                    }
                }
            }
        }
        self.agg.links.record(from as u64, to as u64, sent, useful);
    }

    /// Records the SIR state at the end of `cycle` (numbered from 1).
    pub fn cycle(&mut self, cycle: u32, sir: Sir) {
        self.agg.record_sir(cycle as usize, sir);
        self.agg.max_cycle = self.agg.max_cycle.max(u64::from(cycle));
    }

    /// A view of the aggregate accumulated so far.
    pub fn aggregate(&self) -> &RunAggregate {
        &self.agg
    }

    /// Consumes the sink, returning its aggregate.
    pub fn finish(self) -> RunAggregate {
        self.agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sir(s: usize, i: usize, r: usize) -> Sir {
        Sir {
            susceptible: s,
            infective: i,
            removed: r,
        }
    }

    /// A tiny scripted run: 4 sites, origin 0, push-style contacts.
    fn scripted_sink() -> AggregatingSink {
        let mut sink = AggregatingSink::new();
        sink.run_start(sir(3, 1, 0));
        sink.contact(1, 0, 2, 1, 1); // 0 and 2 first hold at cycle 1
        sink.cycle(1, sir(2, 2, 0));
        sink.contact(2, 2, 1, 1, 1); // 1 first holds at cycle 2
        sink.contact(2, 0, 2, 1, 0); // fruitless
        sink.cycle(2, sir(1, 3, 0));
        sink.contact(3, 1, 3, 1, 1); // 3 first holds at cycle 3
        sink.cycle(3, sir(0, 3, 1));
        sink
    }

    #[test]
    fn delay_marks_each_site_once_at_first_useful_contact() {
        let agg = scripted_sink().finish();
        // Four sites marked: origin + 2 at cycle 1, site 1 at 2, site 3
        // at 3 → delays [1, 1, 2, 3].
        assert_eq!(agg.delay().count(), 4);
        assert_eq!(agg.delay_max(), 3);
        assert!((agg.delay().sum() - 7.0).abs() < 1e-12);
        assert_eq!(agg.totals().contacts, 4);
        assert_eq!(agg.totals().fruitless, 1);
        assert_eq!(agg.max_cycle(), 3);
        assert_eq!(agg.sites(), 4);
        assert_eq!(agg.runs(), 1);
    }

    #[test]
    fn link_matrix_tracks_directed_pairs() {
        let agg = scripted_sink().finish();
        assert_eq!(agg.links().tracked_pairs(), 3);
        let cell = agg.links().get(0, 2).expect("pair (0,2) tracked");
        assert_eq!(cell.contacts, 2);
        assert_eq!(cell.sent, 2);
        assert_eq!(cell.useful, 1);
        assert_eq!(agg.links().totals().contacts, 4);
        assert_eq!(agg.links().overflow().contacts, 0);
    }

    #[test]
    fn link_cap_folds_new_pairs_into_overflow() {
        let mut links = LinkAggregate::default();
        for i in 0..(LINK_CAP as u64 + 10) {
            links.record(i, i + 1, 1, 1);
        }
        assert_eq!(links.tracked_pairs(), LINK_CAP);
        assert_eq!(links.overflow().contacts, 10);
        // A retained pair still updates in place.
        links.record(0, 1, 5, 0);
        assert_eq!(links.get(0, 1).unwrap().sent, 6);
        assert_eq!(links.totals().contacts, LINK_CAP as u64 + 11);
    }

    #[test]
    fn sir_curve_sums_and_run_counts() {
        let agg = scripted_sink().finish();
        let (s, i, r, runs) = agg.sir_curve();
        assert_eq!(s, &[3, 2, 1, 0]);
        assert_eq!(i, &[1, 2, 3, 3]);
        assert_eq!(r, &[0, 0, 0, 1]);
        assert_eq!(runs, &[1, 1, 1, 1]);
    }

    #[test]
    fn merge_matches_one_sink_observing_both_runs() {
        // Two runs through one sink...
        let mut both = AggregatingSink::new();
        both.run_start(sir(1, 1, 0));
        both.contact(1, 0, 1, 2, 1);
        both.cycle(1, sir(0, 2, 0));
        both.run_start(sir(2, 1, 0));
        both.contact(1, 1, 2, 1, 1);
        both.cycle(1, sir(1, 2, 0));
        both.contact(2, 1, 0, 1, 1);
        both.cycle(2, sir(0, 3, 0));
        // ...must equal two single-run sinks merged in the same order.
        let mut a = AggregatingSink::new();
        a.run_start(sir(1, 1, 0));
        a.contact(1, 0, 1, 2, 1);
        a.cycle(1, sir(0, 2, 0));
        let mut b = AggregatingSink::new();
        b.run_start(sir(2, 1, 0));
        b.contact(1, 1, 2, 1, 1);
        b.cycle(1, sir(1, 2, 0));
        b.contact(2, 1, 0, 1, 1);
        b.cycle(2, sir(0, 3, 0));
        let mut merged = a.finish();
        merged.merge(&b.finish());
        let direct = both.finish();
        assert_eq!(merged, direct);
        assert_eq!(merged.to_json(), direct.to_json());
        assert_eq!(merged.runs(), 2);
        assert_eq!(merged.sites(), 3);
    }

    #[test]
    fn seen_set_resets_between_runs() {
        let mut sink = AggregatingSink::new();
        sink.run_start(sir(1, 1, 0));
        sink.contact(1, 0, 1, 1, 1);
        sink.run_start(sir(1, 1, 0));
        sink.contact(2, 0, 1, 1, 1);
        let agg = sink.finish();
        // Both runs mark both sites: 4 delay samples, two at 1, two at 2.
        assert_eq!(agg.delay().count(), 4);
        assert!((agg.delay().sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn json_has_percentiles_and_no_wall_clock_fields() {
        let json = scripted_sink().finish().to_json();
        for key in [
            r#""runs":1"#,
            r#""sites":4"#,
            r#""p50":"#,
            r#""p90":"#,
            r#""p99":"#,
            r#""max":3"#,
            r#""tracked_pairs":3"#,
            r#""cells":[{"from":0"#,
        ] {
            assert!(json.contains(key), "{key} missing from {json}");
        }
        for forbidden in ["seconds", "nanos", "time", "rss"] {
            assert!(!json.contains(forbidden), "{forbidden} leaked into {json}");
        }
    }

    #[test]
    fn dense_export_lists_every_cell_and_truncated_export_caps() {
        let mut dense = AggregatingSink::new();
        dense.run_start(sir(9, 1, 0));
        for i in 0..5u32 {
            dense.contact(1, i as usize, i as usize + 1, 1, 1);
        }
        let dense_json = dense.finish().to_json();
        assert!(dense_json.contains(r#""truncated":false"#));

        let mut agg = RunAggregate::new();
        for i in 0..(LINK_DENSE_EXPORT as u64 + 1) {
            agg.links.record(i, i + 1, i + 1, 0);
        }
        let json = agg.to_json();
        assert!(json.contains(r#""truncated":true"#));
        // Top-K export: the heaviest cell leads.
        let heaviest = format!(r#""from":{}"#, LINK_DENSE_EXPORT);
        assert!(json.contains(&heaviest), "{json}");
        let cell_count = json.matches(r#""from":"#).count();
        assert_eq!(cell_count, LINK_TOP_K);
    }
}
