//! Runtime checking of epidemic-protocol invariants.
//!
//! [`InvariantChecker`] consumes the same event stream a tracer does
//! (run start, contacts, cycle snapshots, run end) and verifies the
//! structural properties every protocol in the paper must uphold. A
//! violated invariant is *reported*, never panicked on: simulations keep
//! running and the caller inspects [`InvariantChecker::violations`]
//! afterwards, so a single bad cycle in trial 400 of 1000 produces a
//! diagnosable record instead of a dead run.
//!
//! Checked invariants:
//!
//! 1. **Conservation** — `s + i + r` equals the site count `n` fixed at
//!    run start (no site appears or vanishes).
//! 2. **Monotone susceptible** — `s` never increases (a site that has
//!    heard an update cannot unhear it).
//! 3. **Monotone removed** — `r` never decreases (removal is permanent in
//!    every variant of §1.4's rumor mongering).
//! 4. **Infection needs traffic** — the per-cycle drop in `s` is at most
//!    the useful units delivered that cycle (nobody learns the update
//!    without a transmission carrying it).
//! 5. **Useful ≤ sent** — per contact, a recipient cannot apply more
//!    units than were sent.
//! 6. **Totals consistency** — contact-by-contact accumulation matches
//!    the engine's aggregate report (`contacts`/`sent`/`useful`/
//!    `fruitless`).
//! 7. **Coverage ⇒ convergence** — once `s == 0` every site's database
//!    digest must be identical: with no susceptible sites left, full
//!    coverage means replica agreement (the paper's consistency goal).

use crate::json::JsonObject;
use crate::record::TraceTotals;
use crate::Sir;

/// Cap on stored violations; beyond it only the count grows.
const MAX_STORED: usize = 100;

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle during which the violation was detected (`0` = run start /
    /// final report).
    pub cycle: u64,
    /// Stable machine-readable rule name (e.g. `"conservation"`).
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// Serializes the violation as one JSON object.
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.field_str("event", "violation")
            .field_u64("cycle", self.cycle)
            .field_str("rule", self.rule)
            .field_str("detail", &self.detail);
        obj.finish()
    }
}

/// Streaming invariant checker; see the [module docs](self) for the rule
/// set.
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    n: Option<u64>,
    prev: Option<Sir>,
    cycle_useful: u64,
    acc: TraceTotals,
    violations: Vec<Violation>,
    /// Total violations detected, including ones dropped past the
    /// storage cap.
    detected: u64,
}

impl InvariantChecker {
    /// A checker with no run started yet.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    fn report(&mut self, cycle: u64, rule: &'static str, detail: String) {
        self.detected += 1;
        if self.violations.len() < MAX_STORED {
            self.violations.push(Violation {
                cycle,
                rule,
                detail,
            });
        }
    }

    /// Fixes the population size from the initial SIR counts.
    pub fn start(&mut self, sir: Sir) {
        self.n = Some((sir.susceptible + sir.infective + sir.removed) as u64);
        self.prev = Some(sir);
        self.cycle_useful = 0;
        self.acc = TraceTotals::default();
    }

    /// Checks one contact's stats (rule 5) and accumulates totals for
    /// rule 6.
    pub fn contact(&mut self, cycle: u64, sent: u64, useful: u64) {
        self.acc.contacts += 1;
        self.acc.sent += sent;
        self.acc.useful += useful;
        if useful == 0 {
            self.acc.fruitless += 1;
        }
        self.cycle_useful += useful;
        if useful > sent {
            self.report(
                cycle,
                "useful_le_sent",
                format!("contact applied {useful} useful units but only {sent} were sent"),
            );
        }
    }

    /// Checks rules 1–4 against the post-cycle SIR counts, and rule 7 if
    /// per-site database digests are supplied.
    pub fn cycle(&mut self, cycle: u64, sir: Sir, digests: Option<&[u64]>) {
        let total = (sir.susceptible + sir.infective + sir.removed) as u64;
        if let Some(n) = self.n {
            if total != n {
                self.report(
                    cycle,
                    "conservation",
                    format!(
                        "s+i+r = {total} but the run started with {n} sites \
                         (s={}, i={}, r={})",
                        sir.susceptible, sir.infective, sir.removed
                    ),
                );
            }
        }
        if let Some(prev) = self.prev {
            if sir.susceptible > prev.susceptible {
                self.report(
                    cycle,
                    "monotone_susceptible",
                    format!(
                        "susceptible grew from {} to {}",
                        prev.susceptible, sir.susceptible
                    ),
                );
            }
            if sir.removed < prev.removed {
                self.report(
                    cycle,
                    "monotone_removed",
                    format!("removed shrank from {} to {}", prev.removed, sir.removed),
                );
            }
            let newly_infected = prev.susceptible.saturating_sub(sir.susceptible) as u64;
            if newly_infected > self.cycle_useful {
                self.report(
                    cycle,
                    "infection_needs_traffic",
                    format!(
                        "{newly_infected} sites were infected this cycle but only {} \
                         useful units were delivered",
                        self.cycle_useful
                    ),
                );
            }
        }
        if sir.susceptible == 0 {
            if let Some(digests) = digests {
                self.check_convergence(cycle, digests);
            }
        }
        self.prev = Some(sir);
        self.cycle_useful = 0;
    }

    fn check_convergence(&mut self, cycle: u64, digests: &[u64]) {
        if let Some((&first, rest)) = digests.split_first() {
            if let Some(pos) = rest.iter().position(|&d| d != first) {
                self.report(
                    cycle,
                    "coverage_convergence",
                    format!(
                        "susceptible = 0 but site {} digest {:#x} differs from \
                         site 0 digest {first:#x}",
                        pos + 1,
                        rest[pos]
                    ),
                );
            }
        }
    }

    /// Final check: the engine's aggregate totals must match contact-level
    /// accumulation (rule 6), and, with digests supplied, full coverage
    /// must mean replica agreement (rule 7).
    pub fn finish(&mut self, engine: TraceTotals, digests: Option<&[u64]>) {
        let cycle = 0;
        if engine != self.acc {
            self.report(
                cycle,
                "totals_consistency",
                format!(
                    "engine reported {engine:?} but per-contact accumulation gives {:?}",
                    self.acc
                ),
            );
        }
        if self.prev.map(|sir| sir.susceptible) == Some(0) {
            if let Some(digests) = digests {
                self.check_convergence(cycle, digests);
            }
        }
    }

    /// `true` when no violation has been detected.
    pub fn is_clean(&self) -> bool {
        self.detected == 0
    }

    /// Violations stored so far (capped at an internal limit; see
    /// [`InvariantChecker::detected`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any dropped past the storage
    /// cap.
    pub fn detected(&self) -> u64 {
        self.detected
    }

    /// All stored violations as JSONL (one object per line); empty string
    /// when clean.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sir(s: usize, i: usize, r: usize) -> Sir {
        Sir {
            susceptible: s,
            infective: i,
            removed: r,
        }
    }

    #[test]
    fn clean_run_reports_nothing() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(3, 1, 0));
        ck.contact(1, 1, 1);
        ck.cycle(1, sir(2, 2, 0), None);
        ck.contact(2, 2, 2);
        ck.cycle(2, sir(0, 2, 2), Some(&[7, 7, 7, 7]));
        ck.finish(
            TraceTotals {
                contacts: 2,
                sent: 3,
                useful: 3,
                fruitless: 0,
            },
            Some(&[7, 7, 7, 7]),
        );
        assert!(ck.is_clean(), "{:?}", ck.violations());
        assert_eq!(ck.to_jsonl(), "");
    }

    #[test]
    fn conservation_violation_is_reported_not_panicked() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(4, 1, 0));
        ck.cycle(1, sir(3, 1, 0), None); // 4 sites — one vanished
        assert!(!ck.is_clean());
        assert_eq!(ck.violations()[0].rule, "conservation");
        assert!(ck.to_jsonl().contains(r#""rule":"conservation""#));
    }

    #[test]
    fn monotonicity_violations() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(2, 1, 1));
        ck.contact(1, 1, 1);
        ck.contact(1, 1, 1);
        ck.contact(1, 1, 1);
        ck.cycle(1, sir(3, 1, 0), None); // s grew AND r shrank
        let rules: Vec<_> = ck.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"monotone_susceptible"), "{rules:?}");
        assert!(rules.contains(&"monotone_removed"), "{rules:?}");
    }

    #[test]
    fn infection_without_traffic_is_caught() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(5, 1, 0));
        ck.contact(1, 1, 0); // fruitless
        ck.cycle(1, sir(3, 3, 0), None); // 2 infected with 0 useful units
        assert_eq!(ck.violations()[0].rule, "infection_needs_traffic");
    }

    #[test]
    fn useful_exceeding_sent_is_caught() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(1, 1, 0));
        ck.contact(1, 1, 2);
        assert_eq!(ck.violations()[0].rule, "useful_le_sent");
    }

    #[test]
    fn totals_mismatch_is_caught() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(1, 1, 0));
        ck.contact(1, 1, 1);
        ck.cycle(1, sir(0, 2, 0), None);
        ck.finish(
            TraceTotals {
                contacts: 5,
                sent: 5,
                useful: 5,
                fruitless: 0,
            },
            None,
        );
        assert_eq!(ck.violations()[0].rule, "totals_consistency");
    }

    #[test]
    fn divergent_digests_after_coverage_are_caught() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(1, 1, 0));
        ck.contact(1, 1, 1);
        ck.cycle(1, sir(0, 2, 0), Some(&[1, 2]));
        assert_eq!(ck.violations()[0].rule, "coverage_convergence");
        // With susceptible sites remaining, digests may differ freely.
        let mut ok = InvariantChecker::new();
        ok.start(sir(2, 1, 0));
        ok.cycle(1, sir(2, 1, 0), Some(&[1, 2, 3]));
        assert!(ok.is_clean());
    }

    #[test]
    fn storage_cap_keeps_counting() {
        let mut ck = InvariantChecker::new();
        ck.start(sir(1, 1, 0));
        for c in 0..150 {
            ck.contact(c, 0, 1); // useful > sent, every time
        }
        assert_eq!(ck.violations().len(), 100);
        assert_eq!(ck.detected(), 150);
    }
}
