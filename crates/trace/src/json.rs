//! A minimal hand-rolled JSON writer.
//!
//! The build environment is offline, so there is no `serde`; trace files
//! are assembled with this writer instead. It produces deterministic
//! output by construction: fields appear exactly in the order they are
//! written, floats use Rust's shortest-roundtrip `Display` (stable across
//! platforms and thread counts), and non-finite floats — which JSON cannot
//! represent — serialize as `null`.
//!
//! # Example
//!
//! ```
//! use epidemic_trace::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("event", "contact").field_u64("cycle", 3);
//! assert_eq!(obj.finish(), r#"{"event":"contact","cycle":3}"#);
//! ```

use std::fmt::Write;

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
}

/// Writes `x` into `out` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        write!(out, "{x}").expect("writing to String cannot fail");
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object; fields are emitted in call order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) -> &mut String {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        let buf = self.key(name);
        buf.push('"');
        escape_into(buf, value);
        buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        let buf = self.key(name);
        write!(buf, "{value}").expect("writing to String cannot fail");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        let buf = self.key(name);
        write_f64(buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        let buf = self.key(name);
        buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn field_u64_array(
        &mut self,
        name: &str,
        values: impl IntoIterator<Item = u64>,
    ) -> &mut Self {
        let buf = self.key(name);
        buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            write!(buf, "{v}").expect("writing to String cannot fail");
        }
        buf.push(']');
        self
    }

    /// Adds an array of floats (`null` for non-finite elements).
    pub fn field_f64_array(
        &mut self,
        name: &str,
        values: impl IntoIterator<Item = f64>,
    ) -> &mut Self {
        let buf = self.key(name);
        buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            write_f64(buf, v);
        }
        buf.push(']');
        self
    }

    /// Adds pre-serialized JSON verbatim (an object, array or literal the
    /// caller already rendered).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name).push_str(json);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a sequence of pre-serialized JSON values as an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_call_order() {
        let mut obj = JsonObject::new();
        obj.field_u64("a", 1)
            .field_str("b", "x")
            .field_f64("c", 0.5)
            .field_bool("d", false);
        assert_eq!(obj.finish(), r#"{"a":1,"b":"x","c":0.5,"d":false}"#);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "a\"b\\c\nd\te\u{1}");
        assert_eq!(obj.finish(), r#"{"s":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.field_f64("nan", f64::NAN)
            .field_f64("inf", f64::INFINITY)
            .field_f64_array("xs", [1.0, f64::NEG_INFINITY]);
        assert_eq!(obj.finish(), r#"{"nan":null,"inf":null,"xs":[1,null]}"#);
    }

    #[test]
    fn arrays_and_raw_fields() {
        let mut obj = JsonObject::new();
        obj.field_u64_array("counts", [3, 0, 7])
            .field_raw("nested", r#"{"k":1}"#);
        assert_eq!(obj.finish(), r#"{"counts":[3,0,7],"nested":{"k":1}}"#);
        assert_eq!(
            array_of(["1".to_string(), "2".to_string()]),
            "[1,2]".to_string()
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
