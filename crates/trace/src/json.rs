//! A minimal hand-rolled JSON writer and parser.
//!
//! The build environment is offline, so there is no `serde`; trace files
//! are assembled with this writer (and read back by [`parse`], which the
//! `epidemic-analyze` consumer uses). It produces deterministic
//! output by construction: fields appear exactly in the order they are
//! written, floats use Rust's shortest-roundtrip `Display` (stable across
//! platforms and thread counts), and non-finite floats — which JSON cannot
//! represent — serialize as `null`.
//!
//! # Example
//!
//! ```
//! use epidemic_trace::json::JsonObject;
//!
//! let mut obj = JsonObject::new();
//! obj.field_str("event", "contact").field_u64("cycle", 3);
//! assert_eq!(obj.finish(), r#"{"event":"contact","cycle":3}"#);
//! ```

use std::fmt::Write;

/// Escapes `s` into `out` as JSON string *contents* (no surrounding
/// quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
}

/// Writes `x` into `out` as a JSON number; non-finite values become
/// `null` (JSON has no NaN/Infinity).
pub fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        write!(out, "{x}").expect("writing to String cannot fail");
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object; fields are emitted in call order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, name: &str) -> &mut String {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, name);
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        let buf = self.key(name);
        buf.push('"');
        escape_into(buf, value);
        buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        let buf = self.key(name);
        write!(buf, "{value}").expect("writing to String cannot fail");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        let buf = self.key(name);
        write_f64(buf, value);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) -> &mut Self {
        let buf = self.key(name);
        buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array of unsigned integers.
    pub fn field_u64_array(
        &mut self,
        name: &str,
        values: impl IntoIterator<Item = u64>,
    ) -> &mut Self {
        let buf = self.key(name);
        buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            write!(buf, "{v}").expect("writing to String cannot fail");
        }
        buf.push(']');
        self
    }

    /// Adds an array of floats (`null` for non-finite elements).
    pub fn field_f64_array(
        &mut self,
        name: &str,
        values: impl IntoIterator<Item = f64>,
    ) -> &mut Self {
        let buf = self.key(name);
        buf.push('[');
        for (i, v) in values.into_iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            write_f64(buf, v);
        }
        buf.push(']');
        self
    }

    /// Adds pre-serialized JSON verbatim (an object, array or literal the
    /// caller already rendered).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name).push_str(json);
        self
    }

    /// Closes the object and returns its text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// A parsed JSON value (see [`parse`]).
///
/// Numbers are kept as `f64` — every value this workspace serializes is
/// either a u64 well inside the 2^53 exact-integer range or already an
/// f64. Object fields preserve source order (they are stored as a vec of
/// pairs, not a map), so `parse(x).to_string()`-style round-trips keep
/// deterministic field ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, fields in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object; `None` for missing fields or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// A JSON parse error: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (the inverse of this module's writer).
///
/// Strict on structure (unbalanced brackets, missing colons and trailing
/// garbage are errors) and tolerant on content the writer can produce:
/// `null` in number position parses as a `Value::Null`. Duplicate object
/// keys are kept as-is; [`Value::get`] returns the first.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected {text})")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs do not appear in our own
                            // output (escape_into only \u-escapes control
                            // characters); map lone surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().expect("non-empty by construction");
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii by scan");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Renders a sequence of pre-serialized JSON values as an array.
pub fn array_of(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_call_order() {
        let mut obj = JsonObject::new();
        obj.field_u64("a", 1)
            .field_str("b", "x")
            .field_f64("c", 0.5)
            .field_bool("d", false);
        assert_eq!(obj.finish(), r#"{"a":1,"b":"x","c":0.5,"d":false}"#);
    }

    #[test]
    fn escapes_control_characters_and_quotes() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "a\"b\\c\nd\te\u{1}");
        assert_eq!(obj.finish(), r#"{"s":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut obj = JsonObject::new();
        obj.field_f64("nan", f64::NAN)
            .field_f64("inf", f64::INFINITY)
            .field_f64_array("xs", [1.0, f64::NEG_INFINITY]);
        assert_eq!(obj.finish(), r#"{"nan":null,"inf":null,"xs":[1,null]}"#);
    }

    #[test]
    fn arrays_and_raw_fields() {
        let mut obj = JsonObject::new();
        obj.field_u64_array("counts", [3, 0, 7])
            .field_raw("nested", r#"{"k":1}"#);
        assert_eq!(obj.finish(), r#"{"counts":[3,0,7],"nested":{"k":1}}"#);
        assert_eq!(
            array_of(["1".to_string(), "2".to_string()]),
            "[1,2]".to_string()
        );
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "a\"b\\c\nd")
            .field_u64("n", 42)
            .field_f64("x", 0.25)
            .field_bool("b", true)
            .field_f64("null_via_nan", f64::NAN)
            .field_u64_array("a", [1, 2, 3])
            .field_raw("o", r#"{"k":1}"#);
        let v = parse(&obj.finish()).expect("writer output parses");
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("null_via_nan"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].as_u64(), Some(3));
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_handles_whitespace_negatives_and_exponents() {
        let v = parse(" { \"a\" : [ -1.5 , 2e3 , null , false ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-1.5));
        assert_eq!(arr[1].as_f64(), Some(2000.0));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(arr[3], Value::Bool(false));
        // as_u64 rejects negatives and fractions.
        assert_eq!(arr[0].as_u64(), None);
    }

    #[test]
    fn parser_preserves_object_field_order() {
        let v = parse(r#"{"z":1,"a":2}"#).unwrap();
        let fields = v.as_object().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            r#"{"a":1} extra"#,
            "tru",
            r#""unterminated"#,
            "[1 2]",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("at byte"));
        }
    }
}
