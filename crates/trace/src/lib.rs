//! Observability layer for the epidemic-algorithms workspace.
//!
//! This crate has **no dependencies** — not even on the sibling
//! simulation crates — so every layer of the workspace can use it without
//! cycles. It provides five pillars:
//!
//! * [`metrics`] — a deterministic metrics registry (counters, gauges,
//!   fixed-bucket histograms) behind the [`MetricsSink`] trait. The no-op
//!   sink `()` has [`MetricsSink::ENABLED`]` == false` and compiles away
//!   entirely, so hot loops can stay instrumented for free.
//! * [`record`] — structured run tracing: [`RunTracer`] turns per-contact
//!   events, per-cycle SIR snapshots and a per-link traffic matrix into
//!   JSONL with *no* wall-clock fields, making trace files byte-identical
//!   across worker-thread counts.
//! * [`aggregate`] — streaming run analytics: [`AggregatingSink`] folds
//!   the same event stream into a bounded-memory [`RunAggregate`]
//!   (delay-percentile histogram, capped link-traffic matrix, SIR curves)
//!   with a deterministic `merge`, usable where full JSONL would not be
//!   (megascale runs).
//! * [`invariant`] — [`InvariantChecker`] verifies protocol invariants
//!   (SIR conservation, monotone removal, traffic consistency,
//!   coverage ⇒ replica agreement) as a run streams by, reporting
//!   violations instead of panicking.
//! * [`profile`] — process-global phase profiling guarded by a single
//!   relaxed atomic, for the engine-setup / contact-loop / end-of-cycle /
//!   aggregation timing table behind `repro --timings`.
//!
//! [`json`] is the shared hand-rolled JSON writer (the build environment
//! is offline; there is no serde).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod invariant;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod record;

pub use aggregate::{AggregatingSink, LinkAggregate, LinkCell, RunAggregate, DELAY_BUCKETS};
pub use invariant::{InvariantChecker, Violation};
pub use metrics::{Histogram, MetricsSink, Registry, DEFAULT_BUCKETS};
pub use profile::PhaseStat;
pub use record::{RunTracer, TraceConfig, TraceTotals};

/// SIR compartment counts at one point in a run: how many sites are
/// susceptible (have not heard the update), infective (actively
/// spreading it) and removed (hold it but no longer spread it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sir {
    /// Sites that do not yet hold the update.
    pub susceptible: usize,
    /// Sites holding the update and actively sharing it.
    pub infective: usize,
    /// Sites holding the update but no longer sharing it.
    pub removed: usize,
}

impl Sir {
    /// Total number of sites.
    pub fn total(&self) -> usize {
        self.susceptible + self.infective + self.removed
    }
}
