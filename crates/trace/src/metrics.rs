//! A deterministic metrics registry and the zero-cost sink seam.
//!
//! Hot paths are instrumented against the [`MetricsSink`] trait rather
//! than a concrete registry. The no-op sink is the unit type `()`: its
//! methods are empty and [`MetricsSink::ENABLED`] is `false`, so after
//! monomorphization an instrumented loop driven with `&mut ()` contains
//! no metrics code at all — instrumentation costs nothing unless a real
//! sink is plugged in.
//!
//! [`Registry`] is the in-memory implementation: counters, gauges and
//! fixed-bucket histograms keyed by `&'static str`, stored in `BTreeMap`s
//! so every export iterates in name order — byte-identical output
//! regardless of the order metrics were first touched.

use std::collections::BTreeMap;

use crate::json::JsonObject;

/// Where instrumented code reports its measurements.
///
/// All methods default to no-ops so sinks implement only what they keep.
pub trait MetricsSink {
    /// Whether this sink records anything. Instrumented code may use this
    /// to skip measurement work (e.g. reading the monotonic clock) when
    /// the sink discards it anyway.
    const ENABLED: bool = true;

    /// Adds `delta` to the named counter.
    fn counter(&mut self, _name: &'static str, _delta: u64) {}

    /// Sets the named gauge to `value`.
    fn gauge(&mut self, _name: &'static str, _value: f64) {}

    /// Records one observation of `value` into the named histogram.
    fn observe(&mut self, _name: &'static str, _value: f64) {}

    /// Reports `nanos` of wall-clock time spent in the named phase.
    /// Phase durations are inherently nondeterministic; exports keep them
    /// separate from the deterministic counters.
    fn phase(&mut self, _name: &'static str, _nanos: u64) {}
}

/// The no-op sink: records nothing, costs nothing.
impl MetricsSink for () {
    const ENABLED: bool = false;
}

/// Default histogram bucket upper bounds (values above the last bound
/// land in the overflow bucket).
pub const DEFAULT_BUCKETS: [f64; 10] =
    [1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];

/// A fixed-bucket histogram: counts per bucket plus sum and count.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    counts: Vec<u64>,
    sum: f64,
    total: u64,
}

impl Histogram {
    /// An empty histogram over `bounds` (ascending upper bounds).
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observed value (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucket upper bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the containing bucket.
    ///
    /// The continuous target rank is `q * count`. Walking the cumulative
    /// bucket counts, the first bucket whose cumulative count reaches the
    /// rank contains the quantile; the estimate interpolates linearly
    /// between that bucket's lower and upper bound (the first bucket's
    /// lower bound is `0.0`). When the rank lands exactly on a bucket's
    /// cumulative boundary the bucket's upper bound is returned — bucket
    /// edges are exact. Observations in the overflow bucket have no upper
    /// bound, so quantiles resolving there return the last configured
    /// bound (a lower bound on the true quantile). An empty histogram
    /// returns `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 || self.bounds.is_empty() {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.total as f64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && rank <= cum as f64 {
                let (lower, upper) = match idx.checked_sub(1) {
                    None => (0.0, self.bounds[0]),
                    Some(p) if idx < self.bounds.len() => (self.bounds[p], self.bounds[idx]),
                    // Overflow bucket: clamp to the last configured bound.
                    Some(_) => return self.bounds[self.bounds.len() - 1],
                };
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
        }
        self.bounds[self.bounds.len() - 1]
    }

    /// Folds `other` into `self` bucket-by-bucket.
    ///
    /// Both histograms must have been built over the same bounds slice;
    /// merging histograms with different bounds would silently misbin, so
    /// a mismatch panics.
    ///
    /// # Panics
    ///
    /// Panics when `other.bounds() != self.bounds()`.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "Histogram::merge requires identical bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.total += other.total;
    }
}

/// An in-memory metrics store with deterministic, name-ordered export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    phases: BTreeMap<&'static str, (u64, u64)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Current value of a counter (`0` if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `(calls, total_nanos)` for the named phase, if recorded.
    pub fn phase_nanos(&self, name: &str) -> Option<(u64, u64)> {
        self.phases.get(name).copied()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Serializes the deterministic sections (counters, gauges,
    /// histograms) as one JSON object, keys in name order. Phase timings
    /// are wall-clock and intentionally excluded; fetch them with
    /// [`Registry::phase_nanos`].
    pub fn to_json(&self) -> String {
        let mut counters = JsonObject::new();
        for (&name, &v) in &self.counters {
            counters.field_u64(name, v);
        }
        let mut gauges = JsonObject::new();
        for (&name, &v) in &self.gauges {
            gauges.field_f64(name, v);
        }
        let mut histograms = JsonObject::new();
        for (&name, h) in &self.histograms {
            let mut obj = JsonObject::new();
            obj.field_u64("count", h.count())
                .field_f64("sum", h.sum())
                .field_f64_array("bounds", h.bounds().iter().copied())
                .field_u64_array("buckets", h.bucket_counts().iter().copied())
                .field_f64("p50", h.quantile(0.50))
                .field_f64("p90", h.quantile(0.90))
                .field_f64("p99", h.quantile(0.99));
            histograms.field_raw(name, &obj.finish());
        }
        let mut root = JsonObject::new();
        root.field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &histograms.finish());
        root.finish()
    }
}

impl MetricsSink for Registry {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(&DEFAULT_BUCKETS))
            .observe(value);
    }

    fn phase(&mut self, name: &'static str, nanos: u64) {
        let slot = self.phases.entry(name).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += nanos;
    }
}

/// Forwarding impl so instrumented code can take sinks by value or
/// reference interchangeably.
impl<S: MetricsSink> MetricsSink for &mut S {
    const ENABLED: bool = S::ENABLED;

    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        (**self).gauge(name, value);
    }

    fn observe(&mut self, name: &'static str, value: f64) {
        (**self).observe(name, value);
    }

    fn phase(&mut self, name: &'static str, nanos: u64) {
        (**self).phase(name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export_in_name_order() {
        let mut reg = Registry::new();
        reg.counter("z.last", 1);
        reg.counter("a.first", 2);
        reg.counter("z.last", 3);
        assert_eq!(reg.counter_value("z.last"), 4);
        assert_eq!(reg.counter_value("a.first"), 2);
        assert_eq!(reg.counter_value("missing"), 0);
        let json = reg.to_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "name-ordered export: {json}");
    }

    #[test]
    fn gauges_overwrite() {
        let mut reg = Registry::new();
        reg.gauge("depth", 1.0);
        reg.gauge("depth", 7.5);
        assert_eq!(reg.gauge_value("depth"), Some(7.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 26.625).abs() < 1e-12);
    }

    #[test]
    fn registry_histograms_use_default_buckets() {
        let mut reg = Registry::new();
        reg.observe("cycle.contacts", 3.0);
        reg.observe("cycle.contacts", 5000.0);
        let h = reg.histogram("cycle.contacts").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(*h.bucket_counts().last().unwrap(), 1, "overflow bucket");
    }

    #[test]
    fn phases_accumulate_but_stay_out_of_json() {
        let mut reg = Registry::new();
        reg.phase("contact_loop", 100);
        reg.phase("contact_loop", 50);
        assert_eq!(reg.phase_nanos("contact_loop"), Some((2, 150)));
        assert!(!reg.to_json().contains("contact_loop"));
    }

    #[test]
    fn noop_sink_is_disabled() {
        const { assert!(!<() as MetricsSink>::ENABLED) };
        const { assert!(<Registry as MetricsSink>::ENABLED) };
        const { assert!(!<&mut () as MetricsSink>::ENABLED) };
        // And it accepts calls without effect.
        let mut sink = ();
        sink.counter("x", 1);
        sink.observe("y", 2.0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new(&[1.0, 10.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_of_single_observation_interpolates_its_bucket() {
        let mut h = Histogram::new(&[2.0, 4.0, 8.0]);
        h.observe(3.0);
        // The single observation fills the (2, 4] bucket: q=1 lands on the
        // bucket's upper edge exactly, q=0.5 halfway through it.
        assert_eq!(h.quantile(1.0), 4.0);
        assert!((h.quantile(0.5) - 3.0).abs() < 1e-12);
        // The first bucket's lower edge is 0.
        let mut first = Histogram::new(&[2.0, 4.0]);
        first.observe(1.0);
        assert!((first.quantile(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_exact_at_bucket_edges() {
        let mut h = Histogram::new(&[1.0, 2.0, 3.0, 4.0]);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        // Each bucket holds exactly a quarter of the mass, so each
        // quartile rank lands on a cumulative boundary: exact values.
        assert_eq!(h.quantile(0.25), 1.0);
        assert_eq!(h.quantile(0.50), 2.0);
        assert_eq!(h.quantile(0.75), 3.0);
        assert_eq!(h.quantile(1.0), 4.0);
    }

    #[test]
    fn quantile_in_overflow_bucket_clamps_to_last_bound() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.observe(100.0);
        assert_eq!(h.quantile(0.5), 2.0);
    }

    #[test]
    fn merge_adds_buckets_sums_and_counts() {
        let mut a = Histogram::new(&DEFAULT_BUCKETS);
        let mut b = Histogram::new(&DEFAULT_BUCKETS);
        for v in [1.0, 3.0] {
            a.observe(v);
        }
        for v in [3.0, 7.0, 2000.0] {
            b.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        let mut direct = Histogram::new(&DEFAULT_BUCKETS);
        for v in [1.0, 3.0, 3.0, 7.0, 2000.0] {
            direct.observe(v);
        }
        assert_eq!(merged, direct);
        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::new(&DEFAULT_BUCKETS));
        assert_eq!(with_empty, a);
        // Quantiles of the merged histogram see the union of the data.
        assert_eq!(merged.count(), 5);
        assert!(merged.quantile(0.9) > a.quantile(0.9));
    }

    #[test]
    #[should_panic(expected = "identical bucket bounds")]
    fn merge_panics_on_bound_mismatch() {
        static OTHER: [f64; 2] = [1.0, 2.0];
        let mut a = Histogram::new(&DEFAULT_BUCKETS);
        a.merge(&Histogram::new(&OTHER));
    }

    #[test]
    fn registry_json_includes_derived_percentiles() {
        let mut reg = Registry::new();
        for _ in 0..10 {
            reg.observe("h", 3.0);
        }
        let json = reg.to_json();
        assert!(json.contains(r#""p50":"#), "{json}");
        assert!(json.contains(r#""p90":"#), "{json}");
        assert!(json.contains(r#""p99":"#), "{json}");
    }

    #[test]
    fn registry_json_is_valid_shape() {
        let mut reg = Registry::new();
        reg.counter("c", 1);
        reg.gauge("g", 2.0);
        reg.observe("h", 3.0);
        let json = reg.to_json();
        assert!(json.starts_with(r#"{"counters":{"c":1},"gauges":{"g":2}"#));
        assert!(json.contains(r#""count":1"#));
    }
}
