//! Process-wide phase profiling with near-zero disabled cost.
//!
//! The engine and trial runner wrap their major phases (setup, contact
//! loop, end-of-cycle, aggregation) in monotonic-clock spans. Threading a
//! profiler handle through every driver signature would churn the whole
//! API surface for a diagnostic feature, so the aggregation point is a
//! process-global table instead, guarded by one relaxed [`AtomicBool`]:
//!
//! * disabled (the default), an instrumented site pays a single atomic
//!   load — no clock reads, no locking;
//! * enabled (`repro --timings` turns it on), sites read
//!   [`std::time::Instant`] around each phase and fold the nanoseconds
//!   into a mutex-guarded table, a few locks per *run* (never per
//!   contact).
//!
//! Phase durations are wall-clock and therefore nondeterministic; they
//! are reported separately from trace files, which carry only
//! deterministic fields.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TABLE: Mutex<Option<BTreeMap<&'static str, (u64, u64)>>> = Mutex::new(None);

/// Aggregated timing for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (e.g. `"engine.contact_loop"`).
    pub name: &'static str,
    /// Spans recorded.
    pub calls: u64,
    /// Total wall-clock nanoseconds across those spans.
    pub nanos: u64,
}

impl PhaseStat {
    /// Total seconds across all recorded spans.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// Turns phase recording on (idempotent).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns phase recording off; already-recorded data is kept until
/// [`take`] drains it.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans are currently being recorded. Instrumented sites check
/// this once per run and skip all clock reads when it is `false`.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Folds `nanos` wall-clock nanoseconds into the named phase.
/// No-op while recording is disabled.
pub fn record(name: &'static str, nanos: u64) {
    if !is_enabled() {
        return;
    }
    let mut table = TABLE.lock().expect("profile table lock");
    let slot = table
        .get_or_insert_with(BTreeMap::new)
        .entry(name)
        .or_insert((0, 0));
    slot.0 += 1;
    slot.1 += nanos;
}

/// Times `f`, records its duration under `name` (when enabled), and
/// returns its result.
pub fn time<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    if !is_enabled() {
        return f();
    }
    let start = Instant::now();
    let out = f();
    record(name, span_nanos(start));
    out
}

/// Nanoseconds elapsed since `start`, saturating at `u64::MAX`.
pub fn span_nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Snapshot of all phases in name order, leaving the table intact.
pub fn snapshot() -> Vec<PhaseStat> {
    let table = TABLE.lock().expect("profile table lock");
    table
        .iter()
        .flatten()
        .map(|(&name, &(calls, nanos))| PhaseStat { name, calls, nanos })
        .collect()
}

/// Drains and returns all phases in name order.
pub fn take() -> Vec<PhaseStat> {
    let mut table = TABLE.lock().expect("profile table lock");
    table
        .take()
        .into_iter()
        .flatten()
        .map(|(name, (calls, nanos))| PhaseStat { name, calls, nanos })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profile table is process-global, so exercise the whole
    // lifecycle in one test to avoid cross-test interference.
    #[test]
    fn lifecycle_record_snapshot_take() {
        // Disabled: nothing sticks.
        disable();
        record("test.ignored", 10);
        assert!(snapshot().iter().all(|p| p.name != "test.ignored"));

        enable();
        record("test.b", 5);
        record("test.a", 3);
        record("test.b", 7);
        let got = time("test.timed", || 42);
        assert_eq!(got, 42);

        let snap = snapshot();
        let find = |name: &str| snap.iter().find(|p| p.name == name).copied();
        assert_eq!(
            find("test.b").map(|p| (p.calls, p.nanos)),
            Some((2, 12)),
            "snapshot {snap:?}"
        );
        assert_eq!(find("test.a").map(|p| p.calls), Some(1));
        assert!(find("test.timed").is_some());
        // Name-ordered.
        let names: Vec<_> = snap.iter().map(|p| p.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);

        let taken = take();
        assert!(!taken.is_empty());
        assert!(take().is_empty(), "take drains the table");
        disable();
        assert!(
            (PhaseStat {
                name: "x",
                calls: 1,
                nanos: 2_500_000_000
            }
            .seconds()
                - 2.5)
                .abs()
                < 1e-12
        );
    }
}
