//! Structured run tracing: per-contact events, per-cycle snapshots, a
//! per-link traffic matrix, and a run summary — serialized as JSONL.
//!
//! [`RunTracer`] is deliberately independent of the simulation crates: it
//! consumes plain numbers (`cycle`, site indices, contact stats, SIR
//! counts) and produces deterministic JSONL text. The simulator's
//! `TraceObserver` adapts engine callbacks onto it; the bench harness
//! concatenates per-trial tracer outputs in trial order, which is what
//! keeps trace files byte-identical at any worker-thread count.
//!
//! Every line is one JSON object with an `"event"` discriminator:
//!
//! | event       | emitted | fields |
//! |-------------|---------|--------|
//! | `run_start` | once    | labels, `s`/`i`/`r` at injection |
//! | `contact`   | per contact (optional) | `cycle`, `from`, `to`, `sent`, `useful` |
//! | `cycle`     | per cycle (optional)   | `cycle`, `s`/`i`/`r`, `contacts`, `sent`, `useful` |
//! | `link`      | at finish (optional)   | `from`, `to`, `contacts`, `sent`, `useful` |
//! | `run_end`   | once    | `cycles`, totals, final `s`/`i`/`r` |
//!
//! No field is wall-clock derived; trace content is reproducible by
//! construction.

use std::collections::BTreeMap;

use crate::json::JsonObject;
use crate::Sir;

/// Which record streams a [`RunTracer`] emits.
///
/// Per-contact events and the link matrix are precise but heavy
/// (O(contacts) lines, O(distinct pairs) state); per-cycle snapshots are
/// cheap. Table-scale traces keep cycles only; single-run deep dives turn
/// everything on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Emit one `contact` line per executed contact.
    pub contacts: bool,
    /// Emit one `cycle` line per completed cycle.
    pub cycles: bool,
    /// Accumulate the per-ordered-pair traffic matrix and emit `link`
    /// lines at finish — the §3 critical-link view.
    pub links: bool,
}

impl TraceConfig {
    /// Cycle snapshots only — the table-scale default.
    pub fn cycles_only() -> Self {
        TraceConfig {
            contacts: false,
            cycles: true,
            links: false,
        }
    }

    /// Everything on — single-run deep dives.
    pub fn full() -> Self {
        TraceConfig {
            contacts: true,
            cycles: true,
            links: true,
        }
    }
}

/// Aggregate contact totals carried by a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceTotals {
    /// Contacts recorded.
    pub contacts: u64,
    /// Units sent across all contacts.
    pub sent: u64,
    /// Units that were news to the recipient.
    pub useful: u64,
    /// Contacts with zero useful units.
    pub fruitless: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkCell {
    contacts: u64,
    sent: u64,
    useful: u64,
}

/// Records one run's events and renders them as JSONL. See the
/// [module docs](self) for the line schema.
#[derive(Debug, Clone)]
pub struct RunTracer {
    config: TraceConfig,
    /// `"name":<raw json>` fragments stamped onto every line.
    labels: Vec<(String, String)>,
    out: String,
    links: BTreeMap<(u64, u64), LinkCell>,
    totals: TraceTotals,
    cycle_acc: TraceTotals,
    last_sir: Option<Sir>,
    cycles: u64,
    started: bool,
}

impl RunTracer {
    /// A tracer emitting the streams selected by `config`.
    pub fn new(config: TraceConfig) -> Self {
        RunTracer {
            config,
            labels: Vec::new(),
            out: String::new(),
            links: BTreeMap::new(),
            totals: TraceTotals::default(),
            cycle_acc: TraceTotals::default(),
            last_sir: None,
            cycles: 0,
            started: false,
        }
    }

    /// Stamps an integer label (e.g. `k`, `trial`) onto every line.
    #[must_use]
    pub fn label_u64(mut self, name: &str, value: u64) -> Self {
        self.labels.push((name.to_string(), value.to_string()));
        self
    }

    /// Stamps a string label (e.g. the experiment name) onto every line.
    #[must_use]
    pub fn label_str(mut self, name: &str, value: &str) -> Self {
        let mut quoted = String::from("\"");
        crate::json::escape_into(&mut quoted, value);
        quoted.push('"');
        self.labels.push((name.to_string(), quoted));
        self
    }

    fn line(&self, event: &str) -> JsonObject {
        let mut obj = JsonObject::new();
        obj.field_str("event", event);
        for (name, raw) in &self.labels {
            obj.field_raw(name, raw);
        }
        obj
    }

    fn emit(&mut self, obj: JsonObject) {
        self.out.push_str(&obj.finish());
        self.out.push('\n');
    }

    fn sir_fields(obj: &mut JsonObject, sir: Sir) {
        obj.field_u64("s", sir.susceptible as u64)
            .field_u64("i", sir.infective as u64)
            .field_u64("r", sir.removed as u64);
    }

    /// Records the state at injection (before any cycle).
    pub fn run_start(&mut self, sir: Sir) {
        debug_assert!(!self.started, "run_start called twice");
        self.started = true;
        self.last_sir = Some(sir);
        let mut obj = self.line("run_start");
        Self::sir_fields(&mut obj, sir);
        self.emit(obj);
    }

    /// Records one executed contact.
    pub fn contact(&mut self, cycle: u64, from: u64, to: u64, sent: u64, useful: u64) {
        self.totals.contacts += 1;
        self.totals.sent += sent;
        self.totals.useful += useful;
        self.cycle_acc.contacts += 1;
        self.cycle_acc.sent += sent;
        self.cycle_acc.useful += useful;
        if useful == 0 {
            self.totals.fruitless += 1;
            self.cycle_acc.fruitless += 1;
        }
        if self.config.links {
            let cell = self.links.entry((from, to)).or_default();
            cell.contacts += 1;
            cell.sent += sent;
            cell.useful += useful;
        }
        if self.config.contacts {
            let mut obj = self.line("contact");
            obj.field_u64("cycle", cycle)
                .field_u64("from", from)
                .field_u64("to", to)
                .field_u64("sent", sent)
                .field_u64("useful", useful);
            self.emit(obj);
        }
    }

    /// Records the state after one completed cycle.
    pub fn cycle(&mut self, cycle: u64, sir: Sir) {
        self.cycles = cycle;
        self.last_sir = Some(sir);
        let acc = std::mem::take(&mut self.cycle_acc);
        if self.config.cycles {
            let mut obj = self.line("cycle");
            obj.field_u64("cycle", cycle);
            Self::sir_fields(&mut obj, sir);
            obj.field_u64("contacts", acc.contacts)
                .field_u64("sent", acc.sent)
                .field_u64("useful", acc.useful);
            self.emit(obj);
        }
    }

    /// Aggregate totals recorded so far.
    pub fn totals(&self) -> TraceTotals {
        self.totals
    }

    /// Emits the link matrix (if configured) and the `run_end` summary,
    /// returning the complete JSONL text.
    pub fn finish(mut self) -> String {
        let links = std::mem::take(&mut self.links);
        for ((from, to), cell) in links {
            let mut obj = self.line("link");
            obj.field_u64("from", from)
                .field_u64("to", to)
                .field_u64("contacts", cell.contacts)
                .field_u64("sent", cell.sent)
                .field_u64("useful", cell.useful);
            self.emit(obj);
        }
        let totals = self.totals;
        let cycles = self.cycles;
        let last = self.last_sir;
        let mut obj = self.line("run_end");
        obj.field_u64("cycles", cycles)
            .field_u64("contacts", totals.contacts)
            .field_u64("sent", totals.sent)
            .field_u64("useful", totals.useful)
            .field_u64("fruitless", totals.fruitless);
        if let Some(sir) = last {
            Self::sir_fields(&mut obj, sir);
        }
        self.emit(obj);
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sir(s: usize, i: usize, r: usize) -> Sir {
        Sir {
            susceptible: s,
            infective: i,
            removed: r,
        }
    }

    #[test]
    fn full_trace_has_every_stream() {
        let mut tracer = RunTracer::new(TraceConfig::full())
            .label_str("experiment", "demo")
            .label_u64("trial", 3);
        tracer.run_start(sir(3, 1, 0));
        tracer.contact(1, 0, 2, 1, 1);
        tracer.contact(1, 0, 1, 1, 0);
        tracer.cycle(1, sir(2, 2, 0));
        tracer.contact(2, 2, 0, 1, 0);
        tracer.cycle(2, sir(2, 0, 2));
        let text = tracer.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + 2 + 3 + 1, "{text}");
        assert!(lines[0].starts_with(r#"{"event":"run_start","experiment":"demo","trial":3,"s":3"#));
        assert!(lines[1].contains(r#""event":"contact""#));
        assert!(lines[3].contains(r#""event":"cycle""#));
        assert!(lines[3].contains(r#""contacts":2,"sent":2,"useful":1"#));
        // Link matrix is sorted by (from, to) and aggregates repeats.
        let link_lines: Vec<&&str> = lines
            .iter()
            .filter(|l| l.contains(r#""event":"link""#))
            .collect();
        assert_eq!(link_lines.len(), 3);
        assert!(link_lines[0].contains(r#""from":0,"to":1"#));
        assert!(link_lines[2].contains(r#""from":2,"to":0"#));
        let end = lines.last().unwrap();
        assert!(end.contains(r#""cycles":2,"contacts":3,"sent":3,"useful":1,"fruitless":2"#));
        assert!(end.ends_with(r#""s":2,"i":0,"r":2}"#));
    }

    #[test]
    fn cycles_only_suppresses_contacts_and_links() {
        let mut tracer = RunTracer::new(TraceConfig::cycles_only());
        tracer.run_start(sir(1, 1, 0));
        tracer.contact(1, 0, 1, 2, 2);
        tracer.cycle(1, sir(0, 2, 0));
        let text = tracer.finish();
        assert!(!text.contains(r#""event":"contact""#));
        assert!(!text.contains(r#""event":"link""#));
        assert_eq!(text.lines().count(), 3);
        assert_eq!(
            RunTracer::new(TraceConfig::cycles_only()).totals(),
            TraceTotals::default()
        );
    }

    #[test]
    fn totals_accumulate_across_cycles() {
        let mut tracer = RunTracer::new(TraceConfig::cycles_only());
        tracer.run_start(sir(2, 1, 0));
        tracer.contact(1, 0, 1, 3, 1);
        tracer.cycle(1, sir(1, 2, 0));
        tracer.contact(2, 1, 2, 2, 0);
        tracer.cycle(2, sir(1, 1, 1));
        assert_eq!(
            tracer.totals(),
            TraceTotals {
                contacts: 2,
                sent: 5,
                useful: 1,
                fruitless: 1
            }
        );
    }
}
