//! The Clearinghouse configuration (paper §0.1, §1.5): direct mail for
//! timely distribution, periodic anti-entropy as the safety net.
//!
//! ```text
//! cargo run --example clearinghouse
//! ```
//!
//! The mail system here loses 25% of messages — far worse than the real
//! CIN — yet the name service still reaches exact consistency, because
//! anti-entropy repairs whatever mail drops. The same run with anti-entropy
//! disabled never converges.

use epidemics::core::{MailConfig, Redistribution};
use epidemics::sim::scenario::legacy::ClearinghouseScenario;

fn main() {
    let lossy_mail = MailConfig {
        loss_probability: 0.25,
        queue_capacity: 500,
    };

    println!("50 sites, 25 updates, mail losing 25% of messages\n");

    for (label, anti_entropy_every, redistribution, rumor_k) in [
        ("mail only (no anti-entropy)", 0, Redistribution::None, None),
        ("mail + anti-entropy backup", 5, Redistribution::None, None),
        (
            "mail + AE + rumor redistribution",
            5,
            Redistribution::Rumor,
            Some(2),
        ),
    ] {
        let scenario = ClearinghouseScenario {
            sites: 50,
            mail: lossy_mail,
            updates: 25,
            anti_entropy_every,
            redistribution,
            rumor_k,
            max_cycles: 1_000,
        };
        let report = scenario.run(1987);
        match report.consistent_at {
            Some(cycle) => println!(
                "{label:45} consistent at cycle {cycle:4} ({} mail failures repaired by {} anti-entropy transfers)",
                report.mail_failures, report.ae_repairs
            ),
            None => println!(
                "{label:45} NEVER consistent within 1000 cycles ({} mail failures)",
                report.mail_failures
            ),
        }
    }

    println!(
        "\nThis is the paper's §1.5 design: a timely but unreliable first hop,\n\
         backed by a simple epidemic that converges with probability 1."
    );
}
