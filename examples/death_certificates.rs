//! Deletion done wrong and done right (paper §2): resurrection, death
//! certificates, and the dormant-certificate immune response.
//!
//! ```text
//! cargo run --example death_certificates
//! ```

use epidemics::db::GcPolicy;
use epidemics::sim::scenario::legacy::{resurrection_without_certificates, DormantDeathScenario};

fn main() {
    // 1. The failure that motivates §2: naive deletion is undone by the
    //    propagation mechanism itself.
    let resurrected = resurrection_without_certificates(12, 7);
    println!("naive deletion (just forget the item):");
    println!("  item resurrected by anti-entropy = {resurrected}\n");
    assert!(resurrected, "the paper's failure mode always reproduces");

    // 2. The space law of §2.1: dormant copies at r of n sites extend the
    //    effective history by a factor of n/r at equal space.
    println!("dormant death certificates, equal-space law τ2 = (τ-τ1)·n/r:");
    for (tau, tau1, n, r) in [(30u64, 15u64, 300u64, 4u64), (30, 15, 300, 8)] {
        let tau2 = GcPolicy::equal_space_tau2(tau, tau1, n, r);
        println!(
            "  τ={tau:2} days, τ1={tau1:2}, n={n}, r={r} -> τ2 = {tau2} days of dormant history"
        );
    }
    println!("  (\"increase the effective history from 30 days to several years\")\n");

    // 3. The immune response of §2.2–2.3: a site that slept through the
    //    deletion *and* the certificate's active window rejoins with the
    //    obsolete item; a dormant certificate awakens and cancels it.
    let report = DormantDeathScenario {
        sites: 20,
        tau1: 50,
        tau2: 100_000,
        retention: 2,
    }
    .run(99);
    println!("obsolete site rejoins after τ1 (20 sites, r = 2 retention sites):");
    println!(
        "  active certificates left after GC = {}",
        report.certificates_active_after_gc
    );
    println!("  dormant certificates awakened    = {}", report.awakened);
    println!(
        "  obsolete item cancelled everywhere = {}",
        report.obsolete_cancelled
    );
    assert!(report.obsolete_cancelled);
    println!(
        "\nNote the antibody analogy (§2.1): the awakened certificate propagates\n\
         with a fresh activation timestamp but its *original* deletion timestamp,\n\
         so any legitimate newer reinstatement would survive it."
    );
}
