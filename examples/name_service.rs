//! The Clearinghouse name service end to end (paper §0.1): three-level
//! names, domains replicated at subsets of servers, per-domain
//! anti-entropy.
//!
//! ```text
//! cargo run --example name_service
//! ```

use epidemics::clearinghouse::{Clearinghouse, Directory, Name, Object};
use epidemics::db::SiteId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight servers; PARC:Xerox is replicated at four of them, SDD:Xerox
    // at two others.
    let mut directory = Directory::new();
    directory.assign("PARC:Xerox".parse()?, (0..4).map(SiteId::new).collect());
    directory.assign("SDD:Xerox".parse()?, vec![SiteId::new(4), SiteId::new(5)]);
    let mut ch = Clearinghouse::new(8, directory);

    // Register some objects.
    let mary: Name = "mary:PARC:Xerox".parse()?;
    let daisy: Name = "daisy:PARC:Xerox".parse()?;
    let star: Name = "star-fs:SDD:Xerox".parse()?;
    ch.bind(&mary, Object::address("MV:2048#737"))?;
    ch.bind(&daisy, Object::address("printer 35-2200"))?;
    ch.bind(&star, Object::address("file service 10.1"))?;

    // Gossip until both domains are internally consistent.
    let mut rng = StdRng::seed_from_u64(7);
    let mut cycles = 0;
    loop {
        cycles += 1;
        ch.anti_entropy_cycle(&mut rng);
        let parc_ok = ch.domain_consistent(&"PARC:Xerox".parse()?);
        let sdd_ok = ch.domain_consistent(&"SDD:Xerox".parse()?);
        if parc_ok && sdd_ok {
            break;
        }
    }
    println!("both domains consistent after {cycles} anti-entropy cycles\n");

    // Any PARC holder answers PARC lookups; SDD holders do not see them.
    for site in [0u32, 3] {
        println!(
            "server s{site}: mary:PARC:Xerox -> {:?}",
            ch.lookup_at(SiteId::new(site), &mary)?
        );
    }
    println!(
        "server s4 asked about PARC (not stored): {:?}",
        ch.lookup_at(SiteId::new(4), &mary).unwrap_err().to_string()
    );
    println!(
        "server s4: star-fs:SDD:Xerox -> {:?}",
        ch.lookup_at(SiteId::new(4), &star)?
    );

    // Aliases resolve through chains; groups hold member sets.
    let lpr: Name = "lpr:PARC:Xerox".parse()?;
    ch.bind(&lpr, Object::Alias(daisy.clone()))?;
    let admins: Name = "admins:PARC:Xerox".parse()?;
    ch.bind(&admins, Object::group(vec![mary.clone()]))?;
    for _ in 0..6 {
        ch.anti_entropy_cycle(&mut rng);
    }
    println!(
        "\nalias: lpr:PARC:Xerox resolves to {}",
        ch.resolve_at(SiteId::new(1), &lpr)?
    );
    println!(
        "group: admins:PARC:Xerox -> {}",
        ch.lookup_at(SiteId::new(1), &admins)?.expect("bound")
    );

    // Deletion spreads as a death certificate, not as absence.
    ch.unbind(&daisy)?;
    for _ in 0..8 {
        ch.anti_entropy_cycle(&mut rng);
    }
    println!(
        "\nafter unbind + gossip: daisy:PARC:Xerox -> {:?} at every holder",
        ch.lookup_at(SiteId::new(2), &daisy)?
    );
    assert!(ch.domain_consistent(&"PARC:Xerox".parse()?));
    Ok(())
}
