//! A guided tour of the paper, section by section, at demo scale.
//!
//! ```text
//! cargo run --release --example paper_tour
//! ```
//!
//! Walks the storyline of Demers et al. (1987) with live mini-experiments:
//! §1.2 direct mail fails; §1.3 anti-entropy repairs and scales like
//! `log₂n + ln n`; §1.4 rumor mongering trades residue for traffic; §2
//! deletions need death certificates; §3 spatial distributions save the
//! transatlantic link.

use epidemics::analysis::{push_epidemic_time, residue_for_counter};
use epidemics::core::{Direction, Feedback, Removal, RumorConfig};
use epidemics::net::topologies::{cin, CinConfig};
use epidemics::net::Spatial;
use epidemics::sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemics::sim::scenario::legacy::{resurrection_without_certificates, DormantDeathScenario};
use epidemics::sim::spatial_ae::AntiEntropySim;

fn main() {
    println!("== §1.3: anti-entropy is a simple epidemic ==");
    let n = 1024;
    let cycles: f64 = (0..10)
        .map(|s| f64::from(AntiEntropyEpidemic::new(Direction::Push).run(n, s).cycles))
        .sum::<f64>()
        / 10.0;
    println!(
        "  push cover time on {n} sites: {cycles:.1} cycles (theory log2+ln = {:.1})",
        push_epidemic_time(n as f64)
    );

    println!("\n== §1.4: rumor mongering trades residue for traffic ==");
    println!("  k | residue (sim) | residue (ODE) | traffic m");
    for k in 1..=4 {
        let driver = RumorEpidemic::new(
            RumorConfig::new(Direction::Push, Feedback::Feedback, Removal::Counter { k })
                .with_reset_on_useful(true),
        );
        let mut residue = 0.0;
        let mut m = 0.0;
        for seed in 0..10 {
            let r = driver.run(1000, seed);
            residue += r.residue;
            m += r.traffic;
        }
        println!(
            "  {k} | {:13.4} | {:13.4} | {:9.2}",
            residue / 10.0,
            residue_for_counter(k),
            m / 10.0
        );
    }

    println!("\n== §2: deletion needs death certificates ==");
    println!(
        "  naive deletion resurrects: {}",
        resurrection_without_certificates(10, 1)
    );
    let report = DormantDeathScenario::default().run(1);
    println!(
        "  dormant certificate awakens and cancels a rejoining obsolete item: {}",
        report.obsolete_cancelled
    );

    println!("\n== §3: spatial distributions rescue the Bushey link ==");
    let net = cin(&CinConfig::default());
    for (label, spatial) in [
        ("uniform ", Spatial::Uniform),
        ("Qs(d)^-2", Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = AntiEntropySim::new(&net.topology, spatial);
        let mut t_last = 0.0;
        let mut bushey = 0.0;
        let mut cycles = 0.0;
        for seed in 0..10 {
            let r = sim.run(seed, None);
            t_last += f64::from(r.t_last);
            bushey += r.compare_traffic.at(net.bushey_link) as f64;
            cycles += f64::from(r.cycles);
        }
        println!(
            "  {label}: t_last {:5.1} cycles, Bushey link {:5.1} conversations/cycle",
            t_last / 10.0,
            bushey / cycles
        );
    }
    println!("\n(Each number is a 10-trial mean; see `repro all` for full fidelity.)");
}
