//! Quickstart: a replicated key-value store kept consistent by push-pull
//! anti-entropy.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Twenty replicas each accept some local writes; every "cycle" each
//! replica resolves differences with one random partner. Watch the number
//! of distinct database states collapse to 1 in a handful of cycles —
//! anti-entropy is a simple epidemic and always converges.

use epidemics::core::{AntiEntropy, Comparison, Direction, Replica};
use epidemics::db::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let n = 20;
    let mut rng = StdRng::seed_from_u64(42);
    let mut replicas: Vec<Replica<String, String>> = (0..n)
        .map(|i| Replica::new(SiteId::new(i as u32)))
        .collect();

    // A few clients write at different sites.
    replicas[0].client_update("user:mary".into(), "MV:PARC:Xerox".into());
    replicas[7].client_update("printer:daisy".into(), "building-35".into());
    replicas[13].client_update("host:alto-1".into(), "10.0.0.17".into());
    replicas[7].client_update("user:mary".into(), "PA:PARC:Xerox".into()); // newer write wins

    let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    let mut cycle = 0;
    loop {
        let distinct = count_distinct(&replicas);
        println!("cycle {cycle:2}: {distinct:2} distinct database states");
        if distinct == 1 {
            break;
        }
        cycle += 1;
        // Each site resolves differences with one random partner.
        for i in 0..n {
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let (lo, hi) = replicas.split_at_mut(i.max(j));
            let (a, b) = if i < j {
                (&mut lo[i], &mut hi[0])
            } else {
                (&mut hi[0], &mut lo[j])
            };
            protocol.exchange(a, b);
        }
    }

    let sample = &replicas[n - 1];
    println!("\nconverged after {cycle} cycles; any replica now answers lookups:");
    for key in ["user:mary", "printer:daisy", "host:alto-1"] {
        println!("  {key} -> {:?}", sample.db().get(&key.to_string()));
    }
    assert_eq!(
        sample
            .db()
            .get(&"user:mary".to_string())
            .map(String::as_str),
        Some("PA:PARC:Xerox"),
        "the newer timestamp supersedes"
    );
}

fn count_distinct(replicas: &[Replica<String, String>]) -> usize {
    let mut checksums: Vec<_> = replicas.iter().map(|r| r.db().checksum()).collect();
    checksums.sort_by_key(|c| c.value());
    checksums.dedup();
    checksums.len()
}
