//! Tour of the §1.4 rumor-mongering variants: blind/feedback, coin/counter,
//! push/pull, connection limits and hunting.
//!
//! ```text
//! cargo run --release --example rumor_variants
//! ```
//!
//! Prints residue (who never hears the rumor), traffic (updates sent per
//! site) and delay for each variant at n = 1000, k = 2 — a compact version
//! of the paper's Tables 1–3.

use epidemics::core::{Direction, Feedback, Removal, RumorConfig};
use epidemics::sim::mixing::RumorEpidemic;

fn main() {
    let n = 1000;
    let trials = 20;
    println!("n = {n}, k = 2, {trials} trials per variant\n");
    println!(
        "{:<42} {:>9} {:>8} {:>7} {:>7}",
        "variant", "residue", "traffic", "t_ave", "t_last"
    );

    let variants: Vec<(&str, RumorEpidemic)> = vec![
        (
            "push, feedback, counter (Table 1)",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            )),
        ),
        (
            "push, blind, coin (Table 2)",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Blind,
                Removal::Coin { k: 2 },
            )),
        ),
        (
            "pull, feedback, counter (Table 3)",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Pull,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            )),
        ),
        (
            "push-pull, feedback, counter",
            RumorEpidemic::new(RumorConfig::new(
                Direction::PushPull,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            )),
        ),
        (
            "push-pull + minimization",
            RumorEpidemic::new(
                RumorConfig::new(
                    Direction::PushPull,
                    Feedback::Feedback,
                    Removal::Counter { k: 2 },
                )
                .with_minimization(),
            ),
        ),
        (
            "push, feedback, counter, conn limit 1",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ))
            .connection_limit(Some(1)),
        ),
        (
            "push, conn limit 1, hunt limit 8",
            RumorEpidemic::new(RumorConfig::new(
                Direction::Push,
                Feedback::Feedback,
                Removal::Counter { k: 2 },
            ))
            .connection_limit(Some(1))
            .hunt_limit(8),
        ),
    ];

    for (label, driver) in variants {
        let mut residue = 0.0;
        let mut traffic = 0.0;
        let mut t_ave = 0.0;
        let mut t_last = 0.0;
        for seed in 0..trials {
            let r = driver.run(n, seed);
            residue += r.residue;
            traffic += r.traffic;
            t_ave += r.t_ave;
            t_last += r.t_last;
        }
        let t = f64::from(trials as u32);
        println!(
            "{:<42} {:>9.4} {:>8.2} {:>7.1} {:>7.1}",
            label,
            residue / t,
            traffic / t,
            t_ave / t,
            t_last / t
        );
    }

    println!(
        "\nObservations (paper §1.4): pull beats push on residue; counters beat\n\
         coins; a connection limit *helps* push; hunting recovers what the\n\
         limit rejected."
    );
}
