//! Spatial distributions on the synthetic Corporate Internet (paper §3.1):
//! how `Q_s(d)^-2` partner selection rescues the transatlantic link.
//!
//! ```text
//! cargo run --release --example spatial_cin
//! ```
//!
//! Reproduces the shape of Table 4 on the generated CIN stand-in: uniform
//! partner selection floods the Bushey link with an order of magnitude more
//! conversations than the average link; the `a = 2.0` distribution brings
//! it below twice the mean at a modest cost in convergence time.

use epidemics::net::topologies::{cin, CinConfig};
use epidemics::net::{expected_cut_conversations, Spatial};
use epidemics::sim::spatial_ae::AntiEntropySim;

fn main() {
    let net = cin(&CinConfig::default());
    let n_eu = net.europe.len();
    let n_na = net.north_america.len();
    println!(
        "synthetic CIN: {} sites ({} Europe, {} North America), {} links, 2 transatlantic",
        net.topology.site_count(),
        n_eu,
        n_na,
        net.topology.link_count()
    );
    println!(
        "§3.1 prediction for uniform selection: ≈ {:.0} conversations/cycle across the cut\n",
        expected_cut_conversations(n_eu as f64, n_na as f64)
    );

    println!(
        "{:<10} {:>7} {:>7} {:>9} {:>11} {:>9} {:>11}",
        "dist", "t_last", "t_ave", "cmp avg", "cmp Bushey", "upd avg", "upd Bushey"
    );
    let runs = 40;
    for (label, spatial) in [
        ("uniform".to_string(), Spatial::Uniform),
        ("a = 1.2".to_string(), Spatial::QsPower { a: 1.2 }),
        ("a = 1.6".to_string(), Spatial::QsPower { a: 1.6 }),
        ("a = 2.0".to_string(), Spatial::QsPower { a: 2.0 }),
    ] {
        let sim = AntiEntropySim::new(&net.topology, spatial);
        let mut t_last = 0.0;
        let mut t_ave = 0.0;
        let mut cmp_avg = 0.0;
        let mut cmp_bushey = 0.0;
        let mut upd_avg = 0.0;
        let mut upd_bushey = 0.0;
        for seed in 0..runs {
            let r = sim.run(seed, None);
            let cycles = f64::from(r.cycles.max(1));
            t_last += f64::from(r.t_last);
            t_ave += r.t_ave;
            cmp_avg += r.compare_traffic.mean_per_link() / cycles;
            cmp_bushey += r.compare_traffic.at(net.bushey_link) as f64 / cycles;
            upd_avg += r.update_traffic.mean_per_link();
            upd_bushey += r.update_traffic.at(net.bushey_link) as f64;
        }
        let t = f64::from(runs as u32);
        println!(
            "{:<10} {:>7.1} {:>7.1} {:>9.2} {:>11.2} {:>9.2} {:>11.2}",
            label,
            t_last / t,
            t_ave / t,
            cmp_avg / t,
            cmp_bushey / t,
            upd_avg / t,
            upd_bushey / t
        );
    }

    println!(
        "\nAs in the paper's Table 4: the spatial distribution cuts average link\n\
         traffic several-fold and critical-link traffic by an order of magnitude,\n\
         while convergence time less than doubles."
    );
}
