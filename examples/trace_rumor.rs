//! Traces one rumor-mongering epidemic end to end through the
//! observability stack: per-contact JSONL events, per-cycle SIR
//! snapshots, the per-link traffic matrix, runtime invariant checking,
//! and the engine's metrics-registry counters.
//!
//! ```text
//! cargo run --example trace_rumor            # seed 42
//! cargo run --example trace_rumor -- 7       # another seed
//! ```
//!
//! The JSONL on stdout carries no wall-clock fields, so two runs with the
//! same seed print identical traces — pipe them through `diff` to compare
//! protocol variants cycle by cycle.

use epidemic_core::{Direction, Feedback, Removal, RumorConfig};
use epidemic_sim::mixing::RumorEpidemic;
use epidemic_sim::{InvariantObserver, TraceObserver};
use epidemic_trace::{Registry, RunTracer, TraceConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let n = 64;
    let cfg = RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    )
    .with_reset_on_useful(true);

    // Everything on: contact events, cycle snapshots, the link matrix.
    let tracer = RunTracer::new(TraceConfig::full())
        .label_str("example", "trace_rumor")
        .label_u64("seed", seed);
    let mut trace = TraceObserver::with_tracer(tracer);
    let mut check = InvariantObserver::new();
    let mut registry = Registry::new();

    let result =
        RumorEpidemic::new(cfg).run_metered(n, seed, &mut (&mut trace, &mut check), &mut registry);

    println!("# run trace (JSONL; diffable, no wall-clock fields)");
    print!("{}", trace.finish());

    println!("\n# engine metrics registry");
    println!("{}", registry.to_json());

    println!(
        "\n# summary: n {n}, seed {seed} -> residue {:.3}, traffic {:.2}, t_ave {:.1}, t_last {:.0}, cycles {}",
        result.residue, result.traffic, result.t_ave, result.t_last, result.cycles
    );
    if check.is_clean() {
        println!("# invariants: clean");
    } else {
        println!("# invariants VIOLATED:");
        print!("{}", check.to_jsonl());
        std::process::exit(1);
    }
}
