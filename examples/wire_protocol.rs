//! The anti-entropy exchange as explicit messages over a lossy transport
//! — how the library would be deployed on a real network.
//!
//! ```text
//! cargo run --example wire_protocol
//! ```
//!
//! Builds a 5-node "remote" fleet behind a transport that drops 30% of
//! messages, then drives one local replica's `sync_via` conversations
//! against it until everyone agrees. Lost messages only ever cost retries:
//! every state change is an idempotent merge.

use std::collections::BTreeMap;

use epidemics::core::wire::{handle_request, sync_via, SyncRequest, SyncResponse, Transport};
use epidemics::core::Replica;
use epidemics::db::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

struct LossyNetwork {
    peers: BTreeMap<SiteId, Replica<String, String>>,
    loss: f64,
    rng: StdRng,
    calls: u32,
    timeouts: u32,
}

#[derive(Debug)]
struct Timeout;

impl Transport<String, String> for LossyNetwork {
    type Error = Timeout;

    fn call(
        &mut self,
        to: SiteId,
        request: SyncRequest<String, String>,
    ) -> Result<SyncResponse<String, String>, Timeout> {
        self.calls += 1;
        if self.rng.random::<f64>() < self.loss {
            self.timeouts += 1;
            return Err(Timeout); // request lost in flight
        }
        let peer = self.peers.get_mut(&to).expect("peer exists");
        let response = handle_request(peer, request);
        if self.rng.random::<f64>() < self.loss {
            self.timeouts += 1;
            return Err(Timeout); // response lost: peer already merged!
        }
        Ok(response)
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1987);
    let mut network = LossyNetwork {
        peers: (0..5)
            .map(|i| (SiteId::new(i), Replica::new(SiteId::new(i))))
            .collect(),
        loss: 0.3,
        rng: StdRng::seed_from_u64(7),
        calls: 0,
        timeouts: 0,
    };
    // Scatter bindings across the remote fleet.
    let names = ["mary", "carl", "daisy", "alto-1", "star-fs", "ivy", "maxc"];
    for (i, n) in names.iter().enumerate() {
        let site = SiteId::new((i % 5) as u32);
        network
            .peers
            .get_mut(&site)
            .unwrap()
            .client_update(n.to_string(), format!("addr-{i}"));
    }

    let mut local: Replica<String, String> = Replica::new(SiteId::new(99));
    let mut conversations = 0;
    loop {
        conversations += 1;
        let peer = SiteId::new(rng.random_range(0..5));
        let _ = sync_via(&mut local, peer, 10_000, &mut network); // retry on Err
        let converged =
            network.peers.values().all(|p| p.db() == local.db()) && local.db().len() == names.len();
        if converged {
            break;
        }
        assert!(conversations < 10_000, "must converge despite loss");
    }

    println!("converged after {conversations} conversations over a 30%-lossy transport");
    println!(
        "transport calls: {} ({} timed out and were simply retried)",
        network.calls, network.timeouts
    );
    println!("\nlocal replica now serves the full directory:");
    for (k, v) in local.db().live_entries() {
        println!("  {k:8} -> {v}");
    }
}
