//! **epidemics** — a faithful Rust implementation of Demers et al.,
//! *Epidemic Algorithms for Replicated Database Maintenance* (PODC 1987).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`db`] — the replicated timestamped store (checksums, recent-update
//!   lists, peel-back index, death certificates);
//! * [`net`] — topologies, routing, link traffic and spatial distributions;
//! * [`core`] — the protocols: direct mail, anti-entropy, rumor mongering,
//!   backup and the activity-list combination;
//! * [`sim`] — round-synchronous experiment drivers;
//! * [`analysis`] — the paper's closed forms and recurrences;
//! * [`clearinghouse`] — the paper's motivating application: a name
//!   service with domain-partitioned replication (§0.1).
//!
//! # Example
//!
//! ```
//! use epidemics::core::{AntiEntropy, Comparison, Direction, Replica};
//! use epidemics::db::SiteId;
//!
//! let mut a = Replica::new(SiteId::new(0));
//! let mut b = Replica::new(SiteId::new(1));
//! a.client_update("grapevine", "PARC");
//! AntiEntropy::new(Direction::PushPull, Comparison::Full).exchange(&mut a, &mut b);
//! assert_eq!(b.db().get(&"grapevine"), Some(&"PARC"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use epidemic_analysis as analysis;
pub use epidemic_clearinghouse as clearinghouse;
pub use epidemic_core as core;
pub use epidemic_db as db;
pub use epidemic_net as net;
pub use epidemic_sim as sim;
