//! Cross-crate integration: every propagation strategy drives a fleet of
//! replicas to the same converged state.

use epidemics::core::activity::{ActivityList, PeelBackRumor};
use epidemics::core::rumor;
use epidemics::core::{
    AntiEntropy, BackupAntiEntropy, Comparison, Direction, Feedback, Redistribution, Removal,
    Replica, RumorConfig,
};
use epidemics::db::SiteId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

type Fleet = Vec<Replica<u32, u64>>;

fn fleet(n: usize) -> Fleet {
    (0..n)
        .map(|i| Replica::new(SiteId::new(i as u32)))
        .collect()
}

fn random_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let i = rng.random_range(0..n);
    let mut j = rng.random_range(0..n - 1);
    if j >= i {
        j += 1;
    }
    (i, j)
}

fn split_pair(
    replicas: &mut Fleet,
    i: usize,
    j: usize,
) -> (&mut Replica<u32, u64>, &mut Replica<u32, u64>) {
    if i < j {
        let (lo, hi) = replicas.split_at_mut(j);
        (&mut lo[i], &mut hi[0])
    } else {
        let (lo, hi) = replicas.split_at_mut(i);
        (&mut hi[0], &mut lo[j])
    }
}

fn all_equal(replicas: &Fleet) -> bool {
    replicas[1..].iter().all(|r| r.db() == replicas[0].db())
}

/// Scatter `updates` client writes over the fleet at distinct timestamps.
fn scatter_updates(replicas: &mut Fleet, updates: usize, rng: &mut StdRng) {
    let n = replicas.len();
    for u in 0..updates {
        let site = rng.random_range(0..n);
        let time = (u as u64 + 1) * 10;
        for r in replicas.iter_mut() {
            r.advance_clock(time);
        }
        replicas[site].client_update(u as u32 % 50, u as u64);
    }
}

#[test]
fn anti_entropy_converges_under_every_comparison_strategy() {
    let strategies = [
        Comparison::Full,
        Comparison::Checksum,
        Comparison::RecentList { tau: 50 },
        Comparison::PeelBack,
    ];
    let mut finals = Vec::new();
    for comparison in strategies {
        let mut rng = StdRng::seed_from_u64(42);
        let mut replicas = fleet(25);
        scatter_updates(&mut replicas, 120, &mut rng);
        let protocol = AntiEntropy::new(Direction::PushPull, comparison);
        let mut exchanges = 0;
        while !all_equal(&replicas) {
            let (i, j) = random_pair(&mut rng, 25);
            let (a, b) = split_pair(&mut replicas, i, j);
            protocol.exchange(a, b);
            exchanges += 1;
            assert!(exchanges < 20_000, "no convergence under {comparison:?}");
        }
        finals.push(replicas[0].db().checksum());
    }
    // All strategies converge to the *same* state (same updates, same
    // last-writer-wins resolution).
    assert!(finals.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn push_only_anti_entropy_still_converges() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut replicas = fleet(15);
    scatter_updates(&mut replicas, 40, &mut rng);
    let protocol = AntiEntropy::new(Direction::Push, Comparison::Full);
    let mut exchanges = 0;
    while !all_equal(&replicas) {
        let (i, j) = random_pair(&mut rng, 15);
        let (a, b) = split_pair(&mut replicas, i, j);
        protocol.exchange(a, b);
        exchanges += 1;
        assert!(exchanges < 50_000);
    }
}

#[test]
fn rumor_mongering_with_backup_never_loses_updates() {
    let mut rng = StdRng::seed_from_u64(99);
    let n = 30;
    let mut replicas = fleet(n);
    let cfg = RumorConfig::new(
        Direction::Push,
        Feedback::Feedback,
        Removal::Counter { k: 1 },
    );
    // Inject 10 rumors; k = 1 push dies early, leaving susceptible sites.
    for u in 0..10u32 {
        let site = rng.random_range(0..n);
        replicas[site].client_update(u, u64::from(u));
    }
    // Run rumor mongering to quiescence.
    let mut guard = 0;
    while replicas.iter().any(|r| !r.hot().is_empty()) {
        let infective: Vec<usize> = (0..n).filter(|&i| !replicas[i].hot().is_empty()).collect();
        for i in infective {
            let mut j = rng.random_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            let (a, b) = split_pair(&mut replicas, i, j);
            rumor::push_contact(&cfg, a, b, &mut rng);
        }
        guard += 1;
        assert!(guard < 10_000);
    }
    let converged_by_rumor = all_equal(&replicas);
    // Back up with anti-entropy: redistributionless, pure repair.
    let backup = BackupAntiEntropy::new(Redistribution::None);
    let mut exchanges = 0;
    while !all_equal(&replicas) {
        let (i, j) = random_pair(&mut rng, n);
        let (a, b) = split_pair(&mut replicas, i, j);
        backup.exchange(a, b);
        exchanges += 1;
        assert!(exchanges < 20_000);
    }
    // The interesting case is when the rumor alone did NOT finish the job.
    if !converged_by_rumor {
        assert!(exchanges > 0);
    }
    assert_eq!(replicas[0].db().len(), 10);
}

#[test]
fn peel_back_rumor_combination_is_failure_free() {
    // §1.5: the activity-list protocol converges with probability 1 —
    // exercise it as the *only* mechanism on a multi-update workload.
    let mut rng = StdRng::seed_from_u64(5);
    let n = 12;
    let mut replicas = fleet(n);
    let mut lists: Vec<ActivityList<u32>> = (0..n).map(|_| ActivityList::new()).collect();
    scatter_updates(&mut replicas, 60, &mut rng);
    let protocol = PeelBackRumor::new(4);
    let mut exchanges = 0;
    while !all_equal(&replicas) {
        let (i, j) = random_pair(&mut rng, n);
        let (a, b) = split_pair(&mut replicas, i, j);
        let (la, lb) = if i < j {
            let (lo, hi) = lists.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = lists.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        protocol.exchange(a, la, b, lb);
        exchanges += 1;
        assert!(exchanges < 10_000);
    }
    assert!(all_equal(&replicas));
}

#[test]
fn concurrent_writes_resolve_by_timestamp_everywhere() {
    let mut replicas = fleet(5);
    // Two sites write the same key; the later timestamp must win at all
    // sites regardless of delivery order.
    replicas[1].advance_clock(100);
    replicas[1].client_update(7, 111);
    replicas[3].advance_clock(200);
    replicas[3].client_update(7, 333);
    let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..200 {
        let (i, j) = random_pair(&mut rng, 5);
        let (a, b) = split_pair(&mut replicas, i, j);
        protocol.exchange(a, b);
    }
    for r in &replicas {
        assert_eq!(r.db().get(&7), Some(&333));
    }
}

#[test]
fn a_new_site_catches_up_entirely_through_anti_entropy() {
    // Site addition needs no protocol beyond anti-entropy itself (§0.2
    // contrasts this with Sarin & Lynch's explicit site-addition
    // machinery): a fresh replica simply starts gossiping.
    let mut rng = StdRng::seed_from_u64(12);
    let mut replicas = fleet(10);
    scatter_updates(&mut replicas, 50, &mut rng);
    let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    let mut budget = 0;
    while !all_equal(&replicas) {
        let (i, j) = random_pair(&mut rng, replicas.len());
        let (a, b) = split_pair(&mut replicas, i, j);
        protocol.exchange(a, b);
        budget += 1;
        assert!(budget < 10_000);
    }
    // The new site joins with an empty database.
    replicas.push(Replica::new(SiteId::new(10)));
    let mut exchanges_to_catch_up = 0;
    while !all_equal(&replicas) {
        let (i, j) = random_pair(&mut rng, replicas.len());
        let (a, b) = split_pair(&mut replicas, i, j);
        protocol.exchange(a, b);
        exchanges_to_catch_up += 1;
        assert!(exchanges_to_catch_up < 10_000);
    }
    assert_eq!(replicas[10].db().len(), replicas[0].db().len());
}

#[test]
fn checksum_anti_entropy_is_cheap_once_converged() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut replicas = fleet(8);
    scatter_updates(&mut replicas, 30, &mut rng);
    let full = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    for _ in 0..200 {
        let (i, j) = random_pair(&mut rng, 8);
        let (a, b) = split_pair(&mut replicas, i, j);
        full.exchange(a, b);
    }
    assert!(all_equal(&replicas));
    // From now on, checksum comparisons short-circuit every exchange.
    let cheap = AntiEntropy::new(Direction::PushPull, Comparison::Checksum);
    for _ in 0..50 {
        let (i, j) = random_pair(&mut rng, 8);
        let (a, b) = split_pair(&mut replicas, i, j);
        let stats = cheap.exchange(a, b);
        assert!(!stats.full_compare);
        assert_eq!(stats.total_sent(), 0);
        assert_eq!(stats.checksum_exchanges, 1);
    }
}
