//! Cross-crate integration: the §2 deletion machinery end to end.

use epidemics::core::{AntiEntropy, Comparison, Direction, Replica};
use epidemics::db::{Entry, GcPolicy, SiteId};
use epidemics::sim::scenario::legacy::{resurrection_without_certificates, DormantDeathScenario};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn converge(replicas: &mut [Replica<&'static str, u32>], rng: &mut StdRng) {
    let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
    let n = replicas.len();
    for _ in 0..100 * n {
        let i = rng.random_range(0..n);
        let mut j = rng.random_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        let (a, b) = if i < j {
            let (lo, hi) = replicas.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = replicas.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        protocol.exchange(a, b);
        if replicas[1..].iter().all(|r| r.db() == replicas[0].db()) {
            return;
        }
    }
    panic!("failed to converge");
}

#[test]
fn naive_deletion_always_resurrects() {
    for seed in 0..5 {
        assert!(resurrection_without_certificates(8, seed));
    }
}

#[test]
fn death_certificates_prevent_resurrection() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut replicas: Vec<Replica<&str, u32>> =
        (0..10).map(|i| Replica::new(SiteId::new(i))).collect();
    replicas[0].client_update("doomed", 1);
    converge(&mut replicas, &mut rng);
    replicas[4].client_delete(&"doomed");
    converge(&mut replicas, &mut rng);
    for r in &replicas {
        assert_eq!(r.db().get(&"doomed"), None);
        assert!(r.db().entry(&"doomed").is_some_and(Entry::is_dead));
    }
}

#[test]
fn deleted_items_can_be_reinstated() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut replicas: Vec<Replica<&str, u32>> =
        (0..8).map(|i| Replica::new(SiteId::new(i))).collect();
    replicas[0].client_update("phoenix", 1);
    converge(&mut replicas, &mut rng);
    replicas[1].client_delete(&"phoenix");
    converge(&mut replicas, &mut rng);
    // A newer update reinstates the item (§2.2's correctness requirement).
    for r in replicas.iter_mut() {
        r.advance_clock(10_000);
    }
    replicas[5].client_update("phoenix", 2);
    converge(&mut replicas, &mut rng);
    for r in &replicas {
        assert_eq!(r.db().get(&"phoenix"), Some(&2));
    }
}

#[test]
fn fixed_threshold_gc_reclaims_space_at_every_site() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut replicas: Vec<Replica<&str, u32>> =
        (0..6).map(|i| Replica::new(SiteId::new(i))).collect();
    replicas[0].client_update("a", 1);
    replicas[0].client_update("b", 2);
    converge(&mut replicas, &mut rng);
    replicas[2].client_delete(&"a");
    converge(&mut replicas, &mut rng);
    let later = replicas.iter().map(Replica::local_time).max().unwrap() + 100;
    for r in replicas.iter_mut() {
        r.advance_clock(later);
        let stats = r.collect_garbage(GcPolicy::FixedThreshold { tau: 10 });
        assert_eq!(stats.discarded, 1);
        assert_eq!(r.db().len(), 1);
        assert_eq!(r.db().get(&"b"), Some(&2));
    }
}

#[test]
fn dormant_scenario_is_robust_across_seeds_and_sizes() {
    for (sites, retention, seed) in [(10, 1, 1), (20, 2, 2), (30, 3, 3)] {
        let report = DormantDeathScenario {
            sites,
            tau1: 50,
            tau2: 1_000_000,
            retention,
        }
        .run(seed);
        assert!(
            report.obsolete_cancelled,
            "sites={sites} retention={retention} seed={seed}: {report:?}"
        );
        assert!(report.awakened >= 1);
    }
}

#[test]
fn reactivated_certificate_does_not_cancel_newer_reinstatement() {
    // The subtle §2.2 case: update x, delete x, certificate goes dormant,
    // x is *reinstated*, and only then an obsolete copy of the original x
    // arrives. The awakened certificate's ordinary timestamp is older than
    // the reinstatement, so the reinstated value must survive everywhere.
    let site = SiteId::new(0);
    let mut a: Replica<&str, u32> = Replica::new(site);
    a.client_update("x", 1);
    let old_entry = a.db().entry(&"x").unwrap().clone();
    a.client_delete_with_retention(&"x", vec![site]);
    a.advance_clock(1_000);
    a.collect_garbage(GcPolicy::Dormant {
        tau1: 10,
        tau2: 1_000_000,
    });
    assert_eq!(a.db().len(), 0);
    assert_eq!(a.db().dormant_len(), 1);

    // Reinstatement arrives (from another site, newer timestamp).
    let mut other: Replica<&str, u32> = Replica::new(SiteId::new(1));
    other.advance_clock(2_000);
    let t_new = other.client_update("x", 2);
    let outcome = a.receive_quietly("x", Entry::live(2, t_new));
    assert!(outcome.was_useful());
    assert_eq!(a.db().get(&"x"), Some(&2));
    assert_eq!(a.db().dormant_len(), 0, "superseded certificate dropped");

    // Even if the obsolete original shows up later, it cannot displace the
    // reinstated value.
    let outcome = a.receive_quietly("x", old_entry);
    assert!(!outcome.was_useful());
    assert_eq!(a.db().get(&"x"), Some(&2));
}
