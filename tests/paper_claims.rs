//! Golden tests: the paper's headline quantitative claims, asserted
//! end-to-end at reduced scale with tolerances wide enough to be stable
//! across platforms but tight enough to catch semantic regressions.
//! (Full-fidelity numbers live in EXPERIMENTS.md / `repro`.)

use epidemics::analysis::{push_epidemic_time, residue_for_counter, RumorOde};
use epidemics::core::{Direction, Feedback, Removal, RumorConfig};
use epidemics::net::topologies::{cin, CinConfig};
use epidemics::net::{expected_cut_conversations, Spatial};
use epidemics::sim::mixing::{AntiEntropyEpidemic, RumorEpidemic};
use epidemics::sim::spatial_ae::AntiEntropySim;

fn mean<T>(trials: u64, f: impl Fn(u64) -> T) -> f64
where
    T: Into<f64>,
{
    (0..trials).map(|s| f(s).into()).sum::<f64>() / trials as f64
}

#[test]
fn table1_k1_residue_is_about_18_percent() {
    let driver = RumorEpidemic::new(
        RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 1 },
        )
        .with_reset_on_useful(true),
    );
    let residue = mean(40, |s| driver.run(1000, s).residue);
    assert!((residue - 0.18).abs() < 0.03, "residue {residue}");
}

#[test]
fn table1_k5_traffic_is_about_6_point_7() {
    let driver = RumorEpidemic::new(
        RumorConfig::new(
            Direction::Push,
            Feedback::Feedback,
            Removal::Counter { k: 5 },
        )
        .with_reset_on_useful(true),
    );
    let m = mean(20, |s| driver.run(1000, s).traffic);
    assert!((m - 6.7).abs() < 0.4, "traffic {m}");
}

#[test]
fn table2_k1_dies_with_96_percent_residue() {
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Push,
        Feedback::Blind,
        Removal::Coin { k: 1 },
    ));
    let residue = mean(40, |s| driver.run(1000, s).residue);
    assert!((residue - 0.96).abs() < 0.03, "residue {residue}");
}

#[test]
fn table3_pull_k2_residue_is_under_a_thousandth() {
    let driver = RumorEpidemic::new(RumorConfig::new(
        Direction::Pull,
        Feedback::Feedback,
        Removal::Counter { k: 2 },
    ));
    let residue = mean(40, |s| driver.run(1000, s).residue);
    assert!(residue < 2e-3, "residue {residue}");
}

#[test]
fn ode_quotes_20_and_6_percent() {
    assert!((residue_for_counter(1) - 0.20).abs() < 0.01);
    assert!((residue_for_counter(2) - 0.06).abs() < 0.005);
    // And the fixed-point equation is satisfied.
    let s = RumorOde::new(3).final_residue();
    assert!((s - (-(4.0) * (1.0 - s)).exp()).abs() < 1e-9);
}

#[test]
fn push_anti_entropy_cover_time_is_log2_plus_ln() {
    let driver = AntiEntropyEpidemic::new(Direction::Push);
    let measured = mean(25, |s| f64::from(driver.run(1000, s).cycles));
    let predicted = push_epidemic_time(1000.0);
    assert!(
        (measured - predicted).abs() / predicted < 0.15,
        "measured {measured} vs predicted {predicted}"
    );
}

#[test]
fn uniform_selection_loads_the_cut_at_the_formula_rate() {
    let net = cin(&CinConfig::default());
    let sim = AntiEntropySim::new(&net.topology, Spatial::Uniform);
    let mut crossing = 0.0;
    let mut cycles = 0.0;
    for seed in 0..8 {
        let r = sim.run(seed, None);
        crossing += (r.compare_traffic.at(net.bushey_link)
            + r.compare_traffic.at(net.second_transatlantic)) as f64;
        cycles += f64::from(r.cycles);
    }
    let predicted =
        expected_cut_conversations(net.europe.len() as f64, net.north_america.len() as f64);
    let ratio = crossing / cycles / predicted;
    assert!((0.75..1.25).contains(&ratio), "ratio {ratio}");
}

#[test]
fn qs2_cuts_critical_link_traffic_by_an_order_of_magnitude() {
    let net = cin(&CinConfig::default());
    let per_cycle = |spatial| {
        let sim = AntiEntropySim::new(&net.topology, spatial);
        let mut bushey = 0.0;
        let mut cycles = 0.0;
        let mut t_last = 0.0;
        for seed in 0..10 {
            let r = sim.run(seed, None);
            bushey += r.compare_traffic.at(net.bushey_link) as f64;
            cycles += f64::from(r.cycles);
            t_last += f64::from(r.t_last);
        }
        (bushey / cycles, t_last / 10.0)
    };
    let (uniform_bushey, uniform_t) = per_cycle(Spatial::Uniform);
    let (local_bushey, local_t) = per_cycle(Spatial::QsPower { a: 2.0 });
    // "traffic on certain critical links [reduced] by a factor of 30" —
    // allow ≥10x on the synthetic topology.
    assert!(
        uniform_bushey > 10.0 * local_bushey,
        "uniform {uniform_bushey} vs local {local_bushey}"
    );
    // "convergence time t_last degrades by less than a factor of 2" — we
    // allow up to 2.6x on the synthetic CIN (its mean distances differ).
    assert!(
        local_t < 2.6 * uniform_t,
        "local {local_t} vs uniform {uniform_t}"
    );
}

#[test]
fn connection_limit_one_keeps_total_update_traffic_constant() {
    let net = cin(&CinConfig::default());
    let update_avg = |limit| {
        let sim = AntiEntropySim::new(&net.topology, Spatial::Uniform).connection_limit(limit);
        mean(8, |s| sim.run(s, None).update_traffic.mean_per_link())
    };
    let unlimited = update_avg(None);
    let limited = update_avg(Some(1));
    assert!(
        (limited - unlimited).abs() / unlimited < 0.1,
        "limited {limited} vs unlimited {unlimited}"
    );
}

#[test]
fn connection_limit_success_fraction_is_one_minus_e_inverse() {
    let net = cin(&CinConfig::default());
    let cmp_per_cycle = |limit| {
        let sim = AntiEntropySim::new(&net.topology, Spatial::Uniform).connection_limit(limit);
        let mut total = 0.0;
        for seed in 0..8 {
            let r = sim.run(seed, None);
            total += r.compare_traffic.mean_per_link() / f64::from(r.cycles.max(1));
        }
        total / 8.0
    };
    let fraction = cmp_per_cycle(Some(1)) / cmp_per_cycle(None);
    let predicted = 1.0 - (-1.0f64).exp(); // ≈ 0.632
    assert!(
        (fraction - predicted).abs() < 0.06,
        "fraction {fraction} vs {predicted}"
    );
}
