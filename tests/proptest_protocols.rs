//! Property-based integration tests: convergence is invariant to protocol
//! choice, exchange schedule and delivery order.

use epidemics::core::{AntiEntropy, Comparison, Direction, Replica};
use epidemics::db::SiteId;
use proptest::prelude::*;

type Fleet = Vec<Replica<u8, u16>>;

#[derive(Debug, Clone)]
struct Workload {
    // (site, key, value) triples; timestamps are assigned in sequence so
    // every execution of the same workload has the same winners.
    writes: Vec<(u8, u8, u16)>,
    deletes: Vec<(u8, u8)>,
}

fn workload() -> impl Strategy<Value = Workload> {
    (
        prop::collection::vec((0u8..6, any::<u8>(), any::<u16>()), 1..40),
        prop::collection::vec((0u8..6, any::<u8>()), 0..10),
    )
        .prop_map(|(writes, deletes)| Workload { writes, deletes })
}

fn apply_workload(replicas: &mut Fleet, w: &Workload) {
    let mut time = 10;
    for &(site, key, value) in &w.writes {
        for r in replicas.iter_mut() {
            r.advance_clock(time);
        }
        replicas[site as usize].client_update(key, value);
        time += 10;
    }
    for &(site, key) in &w.deletes {
        for r in replicas.iter_mut() {
            r.advance_clock(time);
        }
        replicas[site as usize].client_delete(&key);
        time += 10;
    }
}

fn run_schedule(replicas: &mut Fleet, protocol: &AntiEntropy, schedule: &[(u8, u8)]) {
    for &(i, j) in schedule {
        let (i, j) = (i as usize % replicas.len(), j as usize % replicas.len());
        if i == j {
            continue;
        }
        let (a, b) = if i < j {
            let (lo, hi) = replicas.split_at_mut(j);
            (&mut lo[i], &mut hi[0])
        } else {
            let (lo, hi) = replicas.split_at_mut(i);
            (&mut hi[0], &mut lo[j])
        };
        protocol.exchange(a, b);
    }
}

/// A "round robin of pairs" schedule guaranteed to connect 6 sites several
/// times over.
fn saturating_schedule() -> Vec<(u8, u8)> {
    let mut schedule = Vec::new();
    for _ in 0..6 {
        for i in 0..6u8 {
            for j in (i + 1)..6u8 {
                schedule.push((i, j));
            }
        }
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Push-pull anti-entropy converges every workload under a saturating
    /// schedule, and the final state is identical for every comparison
    /// strategy.
    #[test]
    fn all_strategies_agree(w in workload()) {
        let mut reference: Option<u64> = None;
        for comparison in [
            Comparison::Full,
            Comparison::Checksum,
            Comparison::RecentList { tau: 30 },
            Comparison::PeelBack,
        ] {
            let mut replicas: Fleet =
                (0..6).map(|i| Replica::new(SiteId::new(i))).collect();
            apply_workload(&mut replicas, &w);
            let protocol = AntiEntropy::new(Direction::PushPull, comparison);
            run_schedule(&mut replicas, &protocol, &saturating_schedule());
            for r in &replicas[1..] {
                prop_assert_eq!(r.db(), replicas[0].db(), "{:?}", comparison);
            }
            let checksum = replicas[0].db().checksum().value();
            match reference {
                None => reference = Some(checksum),
                Some(expected) => prop_assert_eq!(checksum, expected),
            }
        }
    }

    /// The exchange schedule's order does not change the converged state.
    #[test]
    fn schedule_order_is_irrelevant(w in workload(), seed in any::<u64>()) {
        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        let forward = {
            let mut replicas: Fleet =
                (0..6).map(|i| Replica::new(SiteId::new(i))).collect();
            apply_workload(&mut replicas, &w);
            run_schedule(&mut replicas, &protocol, &saturating_schedule());
            replicas[0].db().checksum()
        };
        let mut shuffled = saturating_schedule();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let backward = {
            let mut replicas: Fleet =
                (0..6).map(|i| Replica::new(SiteId::new(i))).collect();
            apply_workload(&mut replicas, &w);
            run_schedule(&mut replicas, &protocol, &shuffled);
            replicas[0].db().checksum()
        };
        prop_assert_eq!(forward, backward);
    }

    /// After convergence, every key's winner is the workload operation with
    /// the greatest timestamp (deletes included).
    #[test]
    fn winners_are_the_latest_operations(w in workload()) {
        let mut replicas: Fleet =
            (0..6).map(|i| Replica::new(SiteId::new(i))).collect();
        apply_workload(&mut replicas, &w);
        let protocol = AntiEntropy::new(Direction::PushPull, Comparison::Full);
        run_schedule(&mut replicas, &protocol, &saturating_schedule());
        // Reconstruct expectations: writes then deletes in time order.
        let mut expected: std::collections::BTreeMap<u8, Option<u16>> = Default::default();
        for &(_, key, value) in &w.writes {
            expected.insert(key, Some(value));
        }
        for &(_, key) in &w.deletes {
            expected.insert(key, None);
        }
        for (key, value) in expected {
            prop_assert_eq!(replicas[0].db().get(&key), value.as_ref());
        }
    }
}
