//! Cross-crate integration: spatial distributions, traffic accounting and
//! the synthetic CIN.

use epidemics::net::topologies::{cin, figure1, grid, line, CinConfig};
use epidemics::net::{expected_cut_conversations, PartnerSampler, Routes, Spatial};
use epidemics::sim::spatial_ae::AntiEntropySim;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn uniform_cut_traffic_matches_the_papers_formula() {
    // Measure conversations crossing the transatlantic cut on the CIN
    // under uniform selection and compare with 2·n1·n2/(n1+n2).
    let net = cin(&CinConfig::default());
    let sim = AntiEntropySim::new(&net.topology, Spatial::Uniform);
    let mut crossing = 0.0;
    let mut cycles = 0.0;
    for seed in 0..10 {
        let r = sim.run(seed, None);
        crossing += (r.compare_traffic.at(net.bushey_link)
            + r.compare_traffic.at(net.second_transatlantic)) as f64;
        cycles += f64::from(r.cycles);
    }
    let measured_per_cycle = crossing / cycles;
    let predicted =
        expected_cut_conversations(net.europe.len() as f64, net.north_america.len() as f64);
    let ratio = measured_per_cycle / predicted;
    assert!(
        (0.8..1.2).contains(&ratio),
        "measured {measured_per_cycle} vs predicted {predicted}"
    );
}

#[test]
fn compare_traffic_equals_sum_of_route_lengths() {
    // Conservation: total compare traffic must equal the sum of route
    // lengths over all conversations. With n sites and c cycles there are
    // n·c conversations, each of mean route length ≥ 1.
    let topo = grid(&[5, 5]);
    let sim = AntiEntropySim::new(&topo, Spatial::Uniform);
    let r = sim.run(3, Some(topo.sites()[0]));
    let conversations = 25 * r.cycles as u64;
    let total = r.compare_traffic.total();
    assert!(total >= conversations, "every conversation crosses ≥1 link");
    // Mean route length on a 5x5 grid is well under 5.
    assert!(total < conversations * 5);
}

#[test]
fn qs_distribution_adapts_to_local_dimension() {
    // §3: Qs(d)-parameterized distributions adapt to the mesh dimension.
    // On a 1-D line and a 2-D grid of similar size, Qs^-2 must prefer the
    // nearest neighbor strongly in both.
    for topo in [line(49), grid(&[7, 7])] {
        let routes = Routes::compute(&topo);
        let sampler = PartnerSampler::new(&topo, &routes, Spatial::QsPower { a: 2.0 });
        let center = topo.sites()[topo.site_count() / 2];
        let mut rng = StdRng::seed_from_u64(9);
        let mut near = 0;
        let trials = 20_000;
        for _ in 0..trials {
            let p = sampler.sample(center, &mut rng);
            if routes.distance(center, p) == 1 {
                near += 1;
            }
        }
        let frac = f64::from(near) / f64::from(trials);
        assert!(frac > 0.35, "nearest-neighbor fraction {frac}");
    }
}

#[test]
fn spatial_anti_entropy_converges_on_every_zoo_topology() {
    use epidemics::net::topologies::{binary_tree, complete, ring, star};
    let topos = vec![
        line(12),
        ring(12),
        grid(&[4, 4]),
        complete(10),
        binary_tree(4),
        star(10),
        figure1(8),
    ];
    for topo in &topos {
        for spatial in [Spatial::Uniform, Spatial::QsPower { a: 2.0 }] {
            let sim = AntiEntropySim::new(topo, spatial);
            let r = sim.run(11, Some(topo.sites()[0]));
            assert!(
                r.cycles < 1_000,
                "slow convergence on {} sites under {spatial:?}",
                topo.site_count()
            );
        }
    }
}

#[test]
fn cin_regenerates_identically_and_respects_config() {
    let config = CinConfig {
        na_regions: 5,
        sites_per_region: 12,
        europe_sites: 14,
        backbone_chords: 3,
        seed: 123,
        ..CinConfig::default()
    };
    let a = cin(&config);
    let b = cin(&config);
    assert_eq!(a.topology.links(), b.topology.links());
    assert_eq!(a.europe.len(), 14);
    assert_eq!(a.north_america.len(), 60);
    // The declared transatlantic links do connect the continents.
    let (x, y) = a.topology.endpoints(a.bushey_link);
    assert!(a.topology.label(x).contains("gw") || a.topology.label(y).contains("gw"));
}

#[test]
fn hunting_restores_convergence_speed_under_connection_limit() {
    let topo = grid(&[6, 6]);
    let mean_t_last = |hunt: u32| {
        let sim = AntiEntropySim::new(&topo, Spatial::Uniform)
            .connection_limit(Some(1))
            .hunt_limit(hunt);
        (0..15)
            .map(|s| f64::from(sim.run(s, Some(topo.sites()[0])).t_last))
            .sum::<f64>()
            / 15.0
    };
    let no_hunt = mean_t_last(0);
    let with_hunt = mean_t_last(10);
    assert!(
        with_hunt <= no_hunt,
        "hunting should not slow convergence: {with_hunt} vs {no_hunt}"
    );
}
